//! The binding between a knowledge base's content schema and the vector
//! schema induced by the configured encoders (the paper's Vector
//! Representation component does exactly this mapping).

use crate::query::MultiModalQuery;
use mqa_encoders::{Encoder, EncoderChoice, EncoderRegistry};
use mqa_kb::{ContentSchema, KnowledgeBase, ObjectRecord};
use mqa_vector::{Modality, MultiVector, MultiVectorStore, Schema};
use std::sync::Arc;

/// One encoder per content field, plus the induced vector [`Schema`].
/// Cloning shares the encoder instances (they are `Arc`ed and stateless),
/// so a clone encodes identically to the original.
#[derive(Clone)]
pub struct EncoderSet {
    encoders: Vec<Arc<dyn Encoder>>,
    content_schema: ContentSchema,
    vector_schema: Schema,
    choices: Vec<EncoderChoice>,
}

impl EncoderSet {
    /// Instantiates encoders for every field of `schema` from the given
    /// configuration choices.
    ///
    /// # Panics
    /// Panics if the choice count mismatches the schema arity, or a choice's
    /// modality kind is incompatible with its field.
    pub fn build(
        registry: &EncoderRegistry,
        schema: &ContentSchema,
        choices: &[EncoderChoice],
    ) -> Self {
        assert_eq!(
            choices.len(),
            schema.arity(),
            "one encoder choice per schema field required"
        );
        let mut encoders = Vec::with_capacity(choices.len());
        let mut modalities = Vec::with_capacity(choices.len());
        for (field, choice) in schema.fields().iter().zip(choices) {
            let compatible = match (choice.kind(), field.kind) {
                (a, b) if a == b => true,
                // Text encoders accept audio transcripts; visual encoders
                // accept video frame descriptors.
                (mqa_vector::ModalityKind::Text, mqa_vector::ModalityKind::Audio) => true,
                (mqa_vector::ModalityKind::Image, mqa_vector::ModalityKind::Video) => true,
                _ => false,
            };
            assert!(
                compatible,
                "encoder {} cannot embed field `{}` ({})",
                choice.display_name(),
                field.name,
                field.kind.name()
            );
            encoders.push(registry.instantiate(choice));
            modalities.push(Modality {
                name: field.name.clone(),
                kind: field.kind,
                dim: choice.dim(),
            });
        }
        Self {
            encoders,
            content_schema: schema.clone(),
            vector_schema: Schema::new(modalities),
            choices: choices.to_vec(),
        }
    }

    /// A sensible default: hashing text encoders for text/audio fields and
    /// visual encoders (matching the base's raw descriptor length) for
    /// image/video fields, all at dimensionality `dim`.
    pub fn default_for(registry: &EncoderRegistry, schema: &ContentSchema, dim: usize) -> Self {
        let choices: Vec<EncoderChoice> = schema
            .fields()
            .iter()
            .map(|f| match f.kind {
                mqa_vector::ModalityKind::Text | mqa_vector::ModalityKind::Audio => {
                    EncoderChoice::HashingText { dim }
                }
                mqa_vector::ModalityKind::Image | mqa_vector::ModalityKind::Video => {
                    EncoderChoice::VisualResnet {
                        raw_dim: schema.raw_image_dim(),
                        dim,
                    }
                }
            })
            .collect();
        Self::build(registry, schema, &choices)
    }

    /// The induced vector schema.
    pub fn vector_schema(&self) -> &Schema {
        &self.vector_schema
    }

    /// The content schema being encoded.
    pub fn content_schema(&self) -> &ContentSchema {
        &self.content_schema
    }

    /// The configured choices (status-panel display).
    pub fn choices(&self) -> &[EncoderChoice] {
        &self.choices
    }

    /// Encodes one object record into its multi-vector.
    pub fn encode_record(&self, record: &ObjectRecord) -> MultiVector {
        let parts = record
            .contents
            .iter()
            .zip(&self.encoders)
            .map(|(content, enc)| content.as_ref().map(|c| enc.encode(c)))
            .collect();
        MultiVector::partial(&self.vector_schema, parts)
    }

    /// Encodes a user query into a (possibly partial) multi-vector.
    pub fn encode_query(&self, query: &MultiModalQuery) -> MultiVector {
        let contents = query.to_contents(&self.content_schema);
        let parts = contents
            .iter()
            .zip(&self.encoders)
            .map(|(content, enc)| content.as_ref().map(|c| enc.encode(c)))
            // ALLOC: per-query encoded-legs list, one entry per modality.
            .collect();
        MultiVector::partial(&self.vector_schema, parts)
    }
}

/// A fully encoded corpus: the knowledge base plus its multi-vector store
/// and encoder set. Shared (via `Arc`) by every framework in a comparison
/// so encoding happens once.
pub struct EncodedCorpus {
    kb: KnowledgeBase,
    store: MultiVectorStore,
    encoders: EncoderSet,
}

impl EncodedCorpus {
    /// Encodes every object of `kb` with `encoders`.
    ///
    /// # Panics
    /// Panics if the base is empty.
    pub fn encode(kb: KnowledgeBase, encoders: EncoderSet) -> Self {
        assert!(!kb.is_empty(), "cannot encode an empty knowledge base");
        let mut store = MultiVectorStore::new(encoders.vector_schema().clone());
        for (_, record) in kb.iter() {
            store.push(&encoders.encode_record(record));
        }
        Self {
            kb,
            store,
            encoders,
        }
    }

    /// The knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The encoded multi-vector store (ids match knowledge-base ids).
    pub fn store(&self) -> &MultiVectorStore {
        &self.store
    }

    /// The encoder set.
    pub fn encoders(&self) -> &EncoderSet {
        &self.encoders
    }

    /// Ground-truth concept labels, for weight learning on generated
    /// corpora. `None` if any object is unlabelled.
    pub fn concept_labels(&self) -> Option<Vec<u32>> {
        self.kb.iter().map(|(_, r)| r.concept).collect()
    }

    /// A new corpus extending this one with `records`, validated and
    /// encoded through the same encoder set — the re-encoding path online
    /// object insertion rides: ids of existing objects are unchanged and
    /// the new records take the next dense ids, matching what the live
    /// index assigns.
    ///
    /// # Errors
    /// Returns `(index, error)` of the first record the knowledge base
    /// rejects; nothing of this corpus is modified either way.
    pub fn with_records(
        &self,
        records: &[ObjectRecord],
    ) -> Result<Self, (usize, mqa_kb::IngestError)> {
        let mut kb = self.kb.clone();
        kb.ingest_all(records.iter().cloned())?;
        let mut store = self.store.clone();
        for record in records {
            store.push(&self.encoders.encode_record(record));
        }
        Ok(Self {
            kb,
            store,
            encoders: self.encoders.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_kb::DatasetSpec;

    fn corpus() -> EncodedCorpus {
        let kb = DatasetSpec::weather()
            .objects(30)
            .concepts(5)
            .seed(1)
            .generate();
        let registry = EncoderRegistry::new(7);
        let encoders = EncoderSet::default_for(&registry, &kb.schema().clone(), 32);
        EncodedCorpus::encode(kb, encoders)
    }

    #[test]
    fn corpus_encodes_every_object() {
        let c = corpus();
        assert_eq!(c.store().len(), c.kb().len());
        assert_eq!(c.store().schema().arity(), 2);
        assert_eq!(c.store().schema().total_dim(), 64);
    }

    #[test]
    fn labels_present_for_generated_corpora() {
        let c = corpus();
        let labels = c.concept_labels().expect("generated corpus is labelled");
        assert_eq!(labels.len(), 30);
    }

    #[test]
    fn query_encoding_matches_record_encoding() {
        // A text query identical to an object's caption must encode to the
        // same text vector.
        let c = corpus();
        let (id, record) = c.kb().iter().next().unwrap();
        let caption = match record.content(0).unwrap() {
            mqa_encoders::RawContent::Text(t) => t.clone(),
            _ => panic!("caption expected"),
        };
        let q = MultiModalQuery::text(caption);
        let qv = c.encoders().encode_query(&q);
        assert_eq!(qv.part(0).unwrap(), c.store().part_of(id, 0).unwrap());
        assert!(qv.part(1).is_none());
    }

    #[test]
    fn movies_default_encoders_cover_three_fields() {
        let kb = DatasetSpec::movies()
            .objects(10)
            .concepts(3)
            .seed(2)
            .generate();
        let registry = EncoderRegistry::new(1);
        let encoders = EncoderSet::default_for(&registry, &kb.schema().clone(), 16);
        assert_eq!(encoders.vector_schema().arity(), 3);
        let c = EncodedCorpus::encode(kb, encoders);
        assert_eq!(c.store().schema().total_dim(), 48);
    }

    #[test]
    fn with_records_extends_without_touching_existing_ids() {
        let c = corpus();
        let record = c.kb().get(4).clone();
        let grown = c.with_records(std::slice::from_ref(&record)).unwrap();
        assert_eq!(grown.kb().len(), 31);
        assert_eq!(grown.store().len(), 31);
        // Existing ids unchanged; the new record encodes like its twin.
        assert_eq!(grown.store().concat_of(4), c.store().concat_of(4));
        assert_eq!(grown.store().concat_of(30), c.store().concat_of(4));
        // The source corpus is untouched.
        assert_eq!(c.kb().len(), 30);
        // A schema-violating record is rejected with its position.
        let bad = ObjectRecord::new("bad".to_string(), vec![None, None]);
        let err = match c.with_records(&[record, bad]) {
            Err(e) => e,
            Ok(_) => panic!("empty record must be rejected"),
        };
        assert_eq!(err.0, 1);
    }

    #[test]
    #[should_panic(expected = "cannot embed field")]
    fn incompatible_choice_panics() {
        let registry = EncoderRegistry::new(1);
        let schema = ContentSchema::caption_image(8);
        EncoderSet::build(
            &registry,
            &schema,
            &[
                EncoderChoice::VisualResnet { raw_dim: 8, dim: 8 },
                EncoderChoice::VisualResnet { raw_dim: 8, dim: 8 },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "empty knowledge base")]
    fn empty_base_panics() {
        let kb = KnowledgeBase::new("empty", ContentSchema::caption_image(8));
        let registry = EncoderRegistry::new(1);
        let schema = kb.schema().clone();
        let encoders = EncoderSet::default_for(&registry, &schema, 8);
        EncodedCorpus::encode(kb, encoders);
    }
}
