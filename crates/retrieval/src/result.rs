//! Framework-agnostic retrieval output.

use mqa_graph::SearchStats;
use mqa_kb::ObjectId;
use mqa_vector::{Candidate, ScanStats};
use std::time::Duration;

/// Ranked results plus the work performed, uniform across frameworks so
/// the comparative harness (F5/E5) reads one shape.
#[derive(Debug, Clone, Default)]
pub struct RetrievalOutput {
    /// Ranked candidates (ascending fused/framework distance).
    pub results: Vec<Candidate>,
    /// Graph-walk counters, summed over all index probes the framework
    /// made (MR probes one index per modality).
    pub stats: SearchStats,
    /// Incremental-scanning counters (populated by MUST only).
    pub scan: Option<ScanStats>,
    /// Wall-clock latency of the retrieval call.
    pub latency: Duration,
}

impl RetrievalOutput {
    /// Result object ids in rank order.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.results.iter().map(|c| c.id).collect()
    }

    /// Whether any result was produced.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_in_rank_order() {
        let out = RetrievalOutput {
            results: vec![Candidate::new(5, 0.1), Candidate::new(2, 0.4)],
            ..Default::default()
        };
        assert_eq!(out.ids(), vec![5, 2]);
        assert!(!out.is_empty());
    }
}
