//! Typed errors of the retrieval layer.

use crate::framework::FrameworkKind;
use mqa_graph::MutationError;
use std::fmt;

/// Errors raised when assembling or driving a retrieval framework.
///
/// (`Eq` is deliberately absent: [`RetrievalError::BadDiversification`]
/// carries the offending `f32`.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrievalError {
    /// A pre-built index was paired with a corpus of a different size.
    IndexCorpusMismatch {
        /// Objects the index covers.
        index: usize,
        /// Objects the corpus holds.
        corpus: usize,
    },
    /// MMR diversification was asked for with parameters outside its
    /// domain (`lambda` must lie in `[0, 1]` and `k` must be `>= 1`).
    BadDiversification {
        /// The requested trade-off parameter.
        lambda: f32,
        /// The requested result count.
        k: usize,
    },
    /// The framework does not support online index mutation (only MUST's
    /// unified index takes live inserts and deletes).
    MutationUnsupported {
        /// The framework the mutation was attempted on.
        framework: FrameworkKind,
    },
    /// The index rejected a mutation batch (bad shape, out-of-range id).
    Mutation(MutationError),
}

impl fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrievalError::IndexCorpusMismatch { index, corpus } => write!(
                f,
                "index/corpus size mismatch: index covers {index} objects, corpus holds {corpus}"
            ),
            RetrievalError::BadDiversification { lambda, k } => write!(
                f,
                "bad diversification parameters: lambda {lambda} must be in [0, 1] \
                 and k {k} must be >= 1"
            ),
            RetrievalError::MutationUnsupported { framework } => write!(
                f,
                "the {} framework does not support online index mutation",
                framework.name()
            ),
            RetrievalError::Mutation(e) => write!(f, "mutation rejected: {e}"),
        }
    }
}

impl std::error::Error for RetrievalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_sizes() {
        let e = RetrievalError::IndexCorpusMismatch {
            index: 3,
            corpus: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('5'), "{msg}");
    }
}
