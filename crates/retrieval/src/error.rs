//! Typed errors of the retrieval layer.

use std::fmt;

/// Errors raised when assembling or driving a retrieval framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalError {
    /// A pre-built index was paired with a corpus of a different size.
    IndexCorpusMismatch {
        /// Objects the index covers.
        index: usize,
        /// Objects the corpus holds.
        corpus: usize,
    },
}

impl fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrievalError::IndexCorpusMismatch { index, corpus } => write!(
                f,
                "index/corpus size mismatch: index covers {index} objects, corpus holds {corpus}"
            ),
        }
    }
}

impl std::error::Error for RetrievalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_sizes() {
        let e = RetrievalError::IndexCorpusMismatch {
            index: 3,
            corpus: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('5'), "{msg}");
    }
}
