//! The framework trait and its configuration-panel enum.

use crate::error::RetrievalError;
use crate::query::MultiModalQuery;
use crate::result::RetrievalOutput;
use mqa_graph::MutationReport;
use mqa_vector::{MultiVector, VecId};
use serde::{Deserialize, Serialize};

/// The retrieval-framework options of the configuration panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// The paper's framework (multi-vector, learned weights, unified graph,
    /// merging-free search).
    #[default]
    Must,
    /// Multi-streamed Retrieval: per-modality indexes + merge + rerank.
    Mr,
    /// Joint Embedding: one jointly encoded vector per object.
    Je,
}

impl FrameworkKind {
    /// Panel display name.
    pub fn name(self) -> &'static str {
        match self {
            FrameworkKind::Must => "MUST",
            FrameworkKind::Mr => "MR",
            FrameworkKind::Je => "JE",
        }
    }
}

/// A retrieval framework over one encoded corpus.
pub trait RetrievalFramework: Send + Sync {
    /// Which framework this is.
    fn kind(&self) -> FrameworkKind;

    /// Retrieves the `k` objects most relevant to `query`, with search
    /// effort `ef` (beam width; frameworks clamp to `>= k`).
    ///
    /// # Panics
    /// Implementations panic on an empty query (`query.has_content()` is
    /// the caller's guard) and on `k == 0`.
    fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput;

    /// [`RetrievalFramework::search`] on a caller-supplied scratch — the
    /// entry point for engine workers that own per-thread search state.
    /// The default forwards to [`RetrievalFramework::search`] (correct for
    /// frameworks whose inner searches pool their own scratch); frameworks
    /// with a scratch-aware index override it to avoid the pool.
    fn search_scratch(
        &self,
        query: &MultiModalQuery,
        k: usize,
        ef: usize,
        scratch: &mut mqa_graph::SearchScratch,
    ) -> RetrievalOutput {
        let _ = scratch;
        self.search(query, k, ef)
    }

    /// Answers a batch of queries on one reused scratch, in order. Results
    /// are identical to calling [`RetrievalFramework::search`] per query.
    fn retrieve_many(
        &self,
        queries: &[MultiModalQuery],
        k: usize,
        ef: usize,
    ) -> Vec<RetrievalOutput> {
        mqa_graph::with_pooled(|scratch| {
            queries
                .iter()
                .map(|q| self.search_scratch(q, k, ef, scratch))
                .collect()
        })
    }

    /// Inserts a batch of already-encoded objects into the live index,
    /// publishing a new snapshot for subsequent searches; in-flight
    /// searches keep reading the generation they pinned. The default
    /// refuses: only frameworks with a mutable index (MUST) override.
    ///
    /// # Errors
    /// [`RetrievalError::MutationUnsupported`] by default;
    /// [`RetrievalError::Mutation`] when the index rejects the batch.
    fn add_objects(&self, objects: &[MultiVector]) -> Result<MutationReport, RetrievalError> {
        let _ = objects;
        Err(RetrievalError::MutationUnsupported {
            framework: self.kind(),
        })
    }

    /// Tombstones a batch of objects in the live index; dead objects never
    /// surface in results again. The default refuses, like
    /// [`RetrievalFramework::add_objects`].
    ///
    /// # Errors
    /// [`RetrievalError::MutationUnsupported`] by default;
    /// [`RetrievalError::Mutation`] when the index rejects the batch.
    fn remove_objects(&self, ids: &[VecId]) -> Result<MutationReport, RetrievalError> {
        let _ = ids;
        Err(RetrievalError::MutationUnsupported {
            framework: self.kind(),
        })
    }

    /// Status-panel description (index type, weights, modality count).
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(FrameworkKind::Must.name(), "MUST");
        assert_eq!(FrameworkKind::Mr.name(), "MR");
        assert_eq!(FrameworkKind::Je.name(), "JE");
        assert_eq!(FrameworkKind::default(), FrameworkKind::Must);
    }

    #[test]
    fn serde_round_trip() {
        for k in [FrameworkKind::Must, FrameworkKind::Mr, FrameworkKind::Je] {
            let j = serde_json::to_string(&k).unwrap();
            assert_eq!(serde_json::from_str::<FrameworkKind>(&j).unwrap(), k);
        }
    }
}
