//! # mqa-retrieval
//!
//! The three multi-modal retrieval frameworks the MQA paper compares, all
//! behind one [`RetrievalFramework`] trait so the configuration panel can
//! swap them per query:
//!
//! * [`must::MustFramework`] — the paper's framework: multi-vector
//!   representation, learned modality weights, a single unified navigation
//!   graph, **merging-free** fused search with incremental scanning;
//! * [`mr::MrFramework`] — *Multi-streamed Retrieval* (the Milvus-style
//!   baseline): one single-vector index per modality, per-modality top-k'
//!   searches, result-list merging and fused reranking;
//! * [`je::JeFramework`] — *Joint Embedding* (the ARTEMIS-style baseline):
//!   every object jointly encoded into one vector with fixed equal modality
//!   weighting, one single-vector index, no query-time weighting.
//!
//! The crate also owns the [`encoding::EncoderSet`] binding between a
//! knowledge base's *content* schema and the *vector* schema induced by the
//! configured encoders, and the [`query::MultiModalQuery`] type users
//! submit from the QA panel.

pub mod diversify;
pub mod encoding;
pub mod error;
pub mod framework;
pub mod je;
pub mod mr;
pub mod must;
pub mod query;
pub mod result;

pub use diversify::mmr_diversify;
pub use encoding::{EncodedCorpus, EncoderSet};
pub use error::RetrievalError;
pub use framework::{FrameworkKind, RetrievalFramework};
pub use je::{JeFramework, JePartialPolicy};
pub use mr::MrFramework;
pub use must::MustFramework;
pub use query::MultiModalQuery;
pub use result::RetrievalOutput;
