//! MUST — the paper's retrieval framework.
//!
//! Objects keep one vector per modality; similarity is the **weighted**
//! fused distance with weights from the contrastive vector-weight-learning
//! model (`mqa-weights`) or the user; one unified navigation graph holds
//! all modalities; a query makes a single merging-free traversal with
//! incremental (early-abandon) distance scanning.

use crate::encoding::EncodedCorpus;
use crate::error::RetrievalError;
use crate::framework::{FrameworkKind, RetrievalFramework};
use crate::query::MultiModalQuery;
use crate::result::RetrievalOutput;
use mqa_graph::{IndexAlgorithm, UnifiedIndex};
use mqa_vector::{Metric, Weights};
use std::sync::Arc;

/// The MUST framework instance over one corpus.
pub struct MustFramework {
    corpus: Arc<EncodedCorpus>,
    index: UnifiedIndex,
}

impl MustFramework {
    /// Builds the unified index under `weights` (typically the learned
    /// weights; `Weights::uniform` disables weighting for ablations).
    pub fn build(
        corpus: Arc<EncodedCorpus>,
        weights: Weights,
        metric: Metric,
        algorithm: &IndexAlgorithm,
    ) -> Self {
        let index = UnifiedIndex::build(corpus.store().clone(), weights, metric, algorithm);
        Self { corpus, index }
    }

    /// Wraps an already-built (or snapshot-restored, or custom-pipeline)
    /// unified index.
    ///
    /// # Errors
    /// Returns [`RetrievalError::IndexCorpusMismatch`] if the index does
    /// not cover the corpus.
    pub fn from_index(
        corpus: Arc<EncodedCorpus>,
        index: UnifiedIndex,
    ) -> Result<Self, RetrievalError> {
        if index.len() != corpus.store().len() {
            return Err(RetrievalError::IndexCorpusMismatch {
                index: index.len(),
                corpus: corpus.store().len(),
            });
        }
        Ok(Self { corpus, index })
    }

    /// The unified index (exposed for the experiment harness: exact search,
    /// scan statistics).
    pub fn index(&self) -> &UnifiedIndex {
        &self.index
    }

    /// The weights the index was built with.
    pub fn weights(&self) -> &Weights {
        self.index.weights()
    }
}

impl RetrievalFramework for MustFramework {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Must
    }

    fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
        mqa_graph::with_pooled(|scratch| self.search_scratch(query, k, ef, scratch))
    }

    fn search_scratch(
        &self,
        query: &MultiModalQuery,
        k: usize,
        ef: usize,
        scratch: &mut mqa_graph::SearchScratch,
    ) -> RetrievalOutput {
        assert!(query.has_content(), "empty query");
        assert!(k > 0, "k must be >= 1");
        mqa_obs::trace::note_framework("must");
        let outer = mqa_obs::span("retrieval.must.search");
        let qv = {
            let _stage = mqa_obs::span("retrieval.must.encode");
            self.corpus.encoders().encode_query(query)
        };
        let override_w = {
            let _stage = mqa_obs::span("retrieval.must.weight_fuse");
            query
                .weight_override
                .as_ref()
                .map(|raw| Weights::normalized(raw))
        };
        let out = {
            let _stage = mqa_obs::span("retrieval.must.index_search");
            self.index
                .search_scratch(&qv, override_w.as_ref(), k, ef, scratch)
        };
        RetrievalOutput {
            results: out.output.results.clone(),
            stats: out.output.stats,
            scan: Some(out.scan),
            latency: outer.finish(),
        }
    }

    fn add_objects(
        &self,
        objects: &[mqa_vector::MultiVector],
    ) -> Result<mqa_graph::MutationReport, RetrievalError> {
        self.index
            .add_objects(objects)
            .map_err(RetrievalError::Mutation)
    }

    fn remove_objects(
        &self,
        ids: &[mqa_vector::VecId],
    ) -> Result<mqa_graph::MutationReport, RetrievalError> {
        self.index
            .remove_objects(ids)
            .map_err(RetrievalError::Mutation)
    }

    fn describe(&self) -> String {
        format!(
            "MUST: {} (weights {:?})",
            self.index.describe(),
            self.index
                .weights()
                .as_slice()
                .iter()
                .map(|w| (w * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncoderSet;
    use mqa_encoders::EncoderRegistry;
    use mqa_kb::{DatasetSpec, GroundTruth};

    fn corpus() -> Arc<EncodedCorpus> {
        let kb = DatasetSpec::weather()
            .objects(240)
            .concepts(8)
            .caption_noise(0.05)
            .seed(1)
            .generate();
        let registry = EncoderRegistry::new(7);
        let schema = kb.schema().clone();
        let encoders = EncoderSet::default_for(&registry, &schema, 32);
        Arc::new(EncodedCorpus::encode(kb, encoders))
    }

    fn framework() -> MustFramework {
        MustFramework::build(
            corpus(),
            Weights::uniform(2),
            Metric::L2,
            &IndexAlgorithm::mqa_graph(),
        )
    }

    #[test]
    fn text_query_finds_concept_members() {
        let f = framework();
        let gt = GroundTruth::build(f.corpus.kb());
        // Use concept 0's canonical keywords from one of its members.
        let member = gt.members(0)[0];
        let title = f.corpus.kb().get(member).title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        let out = f.search(&MultiModalQuery::text(phrase), 10, 64);
        let hits = out
            .ids()
            .iter()
            .filter(|&&id| gt.is_relevant(id, 0))
            .count();
        assert!(hits >= 7, "MUST text search hit {hits}/10");
        assert!(out.scan.is_some());
        assert!(out.latency.as_nanos() > 0);
    }

    #[test]
    fn image_query_finds_same_style() {
        let f = framework();
        // reference image = object 0's raw descriptor
        let rec = f.corpus.kb().get(0);
        let img = match rec.content(1).unwrap() {
            mqa_encoders::RawContent::Image(i) => i.clone(),
            _ => panic!(),
        };
        let out = f.search(&MultiModalQuery::image(img), 5, 64);
        // object 0 itself must be the top hit (identical descriptor)
        assert_eq!(out.ids()[0], 0);
    }

    #[test]
    fn weight_override_is_respected() {
        let f = framework();
        let rec = f.corpus.kb().get(3);
        let img = match rec.content(1).unwrap() {
            mqa_encoders::RawContent::Image(i) => i.clone(),
            _ => panic!(),
        };
        // text from a *different* concept + image of object 3, image-only
        // weighting: the image must dominate.
        let other_title = f.corpus.kb().get(1).title.clone();
        let phrase = other_title
            .rsplit_once(" #")
            .map(|(p, _)| p.to_string())
            .unwrap();
        let q = MultiModalQuery::text_and_image(phrase, img).with_weights(vec![0.0, 1.0]);
        let out = f.search(&q, 1, 64);
        assert_eq!(out.ids()[0], 3);
    }

    #[test]
    fn describe_names_must() {
        let f = framework();
        assert!(f.describe().starts_with("MUST"));
        assert_eq!(f.kind(), FrameworkKind::Must);
    }

    #[test]
    #[should_panic(expected = "empty query")]
    fn empty_query_panics() {
        framework().search(&MultiModalQuery::default(), 5, 32);
    }

    #[test]
    fn from_index_rejects_size_mismatch() {
        let f = framework();
        let small = DatasetSpec::weather()
            .objects(60)
            .concepts(4)
            .seed(2)
            .generate();
        let registry = EncoderRegistry::new(9);
        let schema = small.schema().clone();
        let encoders = EncoderSet::default_for(&registry, &schema, 32);
        let small_corpus = Arc::new(EncodedCorpus::encode(small, encoders));
        let err = match MustFramework::from_index(small_corpus, f.index.snapshot().restore()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched sizes must be rejected"),
        };
        assert_eq!(
            err,
            RetrievalError::IndexCorpusMismatch {
                index: 240,
                corpus: 60
            }
        );
    }

    #[test]
    fn frameworks_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MustFramework>();
        assert_send_sync::<crate::mr::MrFramework>();
        assert_send_sync::<crate::je::JeFramework>();
        assert_send_sync::<std::sync::Arc<dyn RetrievalFramework>>();
    }

    #[test]
    fn must_supports_online_mutation_through_the_trait() {
        let f = framework();
        let shared: Arc<dyn RetrievalFramework> = Arc::new(framework());
        // Behind the trait object: insert an encoded copy of object 0,
        // then retire the original — searches see only the replacement.
        let qv = f.corpus.store().multivector_of(0);
        let report = shared.add_objects(std::slice::from_ref(&qv)).unwrap();
        assert_eq!((report.epoch, report.applied), (1, 1));
        shared.remove_objects(&[0]).unwrap();
        let rec = f.corpus.kb().get(0);
        let img = match rec.content(1).unwrap() {
            mqa_encoders::RawContent::Image(i) => i.clone(),
            _ => panic!(),
        };
        let out = shared.search(&MultiModalQuery::image(img), 5, 64);
        assert!(!out.ids().contains(&0), "retired object surfaced");
        assert_eq!(out.ids()[0], 240, "the inserted duplicate must win");
    }

    #[test]
    fn mr_and_je_refuse_mutation() {
        use crate::error::RetrievalError;
        let c = corpus();
        let mr = crate::mr::MrFramework::build(Arc::clone(&c), Metric::L2, &IndexAlgorithm::hnsw());
        let qv = c.store().multivector_of(0);
        assert_eq!(
            mr.add_objects(std::slice::from_ref(&qv)),
            Err(RetrievalError::MutationUnsupported {
                framework: FrameworkKind::Mr
            })
        );
        assert_eq!(
            mr.remove_objects(&[0]),
            Err(RetrievalError::MutationUnsupported {
                framework: FrameworkKind::Mr
            })
        );
    }

    #[test]
    fn retrieve_many_matches_per_query_search() {
        let f = framework();
        let rec = f.corpus.kb().get(0);
        let img = match rec.content(1).unwrap() {
            mqa_encoders::RawContent::Image(i) => i.clone(),
            _ => panic!(),
        };
        let queries = vec![
            MultiModalQuery::text(f.corpus.kb().get(5).title.clone()),
            MultiModalQuery::image(img),
            MultiModalQuery::text(f.corpus.kb().get(9).title.clone()),
        ];
        let batched = f.retrieve_many(&queries, 5, 48);
        assert_eq!(batched.len(), queries.len());
        for (q, b) in queries.iter().zip(&batched) {
            let single = f.search(q, 5, 48);
            assert_eq!(single.results, b.results, "batched answer diverged");
        }
    }
}
