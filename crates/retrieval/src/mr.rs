//! MR — Multi-streamed Retrieval (the Milvus-style baseline).
//!
//! One single-vector index per modality. A query searches every channel it
//! has content for, then **merges the per-channel result lists** with
//! reciprocal-rank fusion (scores from different modality spaces are not
//! directly comparable, so rank-based fusion is the standard merge).
//!
//! The framework's structural weaknesses — the ones the paper's Figure 5
//! demonstrates — are inherent here, not simulated: (1) an object relevant
//! through the *combination* of modalities but mediocre in each individual
//! channel never enters any candidate list; (2) every query pays one graph
//! search per modality; (3) fusion has no notion of modality importance.

use crate::encoding::EncodedCorpus;
use crate::framework::{FrameworkKind, RetrievalFramework};
use crate::query::MultiModalQuery;
use crate::result::RetrievalOutput;
use mqa_graph::{IndexAlgorithm, VectorIndex};
use mqa_kb::ObjectId;
use mqa_vector::{Candidate, Metric};
use std::collections::HashMap;
use std::sync::Arc;

/// Over-retrieval factor: each channel fetches `k * OVERSAMPLE` candidates
/// before merging.
const OVERSAMPLE: usize = 3;

/// RRF smoothing constant (the conventional value from the literature).
const RRF_K: f64 = 60.0;

/// The MR framework instance over one corpus.
pub struct MrFramework {
    corpus: Arc<EncodedCorpus>,
    channels: Vec<VectorIndex>,
}

impl MrFramework {
    /// Builds one index per modality.
    pub fn build(corpus: Arc<EncodedCorpus>, metric: Metric, algorithm: &IndexAlgorithm) -> Self {
        let arity = corpus.store().schema().arity();
        let channels = (0..arity)
            .map(|m| VectorIndex::build(corpus.store().modality_store(m), metric, algorithm))
            .collect();
        Self { corpus, channels }
    }

    /// Per-modality indexes (for the harness's build-cost accounting).
    pub fn channels(&self) -> &[VectorIndex] {
        &self.channels
    }
}

impl RetrievalFramework for MrFramework {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Mr
    }

    fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
        assert!(query.has_content(), "empty query");
        assert!(k > 0, "k must be >= 1");
        mqa_obs::trace::note_framework("mr");
        let outer = mqa_obs::span("retrieval.mr.search");
        let qv = {
            let _stage = mqa_obs::span("retrieval.mr.encode");
            self.corpus.encoders().encode_query(query)
        };
        let fetch = k * OVERSAMPLE;
        let mut stats = mqa_graph::SearchStats::default();
        // ALLOC: per-query RRF fusion table, bounded by the union of per-leg results.
        let mut rrf: HashMap<ObjectId, f64> = HashMap::new();
        let mut searched = 0usize;
        for (m, part) in qv.present() {
            // A modality with no built channel contributes nothing to the
            // fused ranking rather than panicking.
            let Some(channel) = self.channels.get(m) else {
                continue;
            };
            let channel_span = mqa_obs::span("retrieval.mr.channel_search");
            let out = channel.search(part, fetch, ef.max(fetch));
            let _ = channel_span.finish();
            stats.merge(&out.stats);
            searched += 1;
            for (rank, c) in out.results.iter().enumerate() {
                // ALLOC: RRF table growth, bounded by the union of per-leg results.
                *rrf.entry(c.id).or_insert(0.0) += 1.0 / (RRF_K + rank as f64 + 1.0);
            }
        }
        assert!(searched > 0, "query matched no channel");
        // Merge: descending fused RRF score; expose (1 - score) as the
        // pseudo-distance so lower stays better.
        let merge_span = mqa_obs::span("retrieval.mr.merge");
        let mut merged: Vec<Candidate> = rrf
            .into_iter()
            // INVARIANT: RRF scores live in [0, 1), so the f64 -> f32
            // narrowing loses only sub-epsilon tail precision.
            .map(|(id, score)| Candidate::new(id, (1.0 - score) as f32))
            // ALLOC: the fused result list handed back to the caller.
            .collect();
        merged.sort_unstable();
        merged.truncate(k);
        let _ = merge_span.finish();
        RetrievalOutput {
            results: merged,
            stats,
            scan: None,
            latency: outer.finish(),
        }
    }

    fn describe(&self) -> String {
        format!(
            "MR: {} per-modality indexes ({}), reciprocal-rank fusion",
            self.channels.len(),
            self.channels
                .first()
                .map(|c| c.algorithm().name())
                .unwrap_or("none")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncoderSet;
    use mqa_encoders::EncoderRegistry;
    use mqa_kb::{DatasetSpec, GroundTruth};

    fn corpus() -> Arc<EncodedCorpus> {
        let kb = DatasetSpec::weather()
            .objects(240)
            .concepts(8)
            .caption_noise(0.05)
            .seed(1)
            .generate();
        let registry = EncoderRegistry::new(7);
        let schema = kb.schema().clone();
        let encoders = EncoderSet::default_for(&registry, &schema, 32);
        Arc::new(EncodedCorpus::encode(kb, encoders))
    }

    fn framework() -> MrFramework {
        MrFramework::build(corpus(), Metric::L2, &IndexAlgorithm::mqa_graph())
    }

    #[test]
    fn builds_one_channel_per_modality() {
        let f = framework();
        assert_eq!(f.channels().len(), 2);
        assert_eq!(f.kind(), FrameworkKind::Mr);
    }

    #[test]
    fn text_only_query_probes_one_channel() {
        let f = framework();
        let gt = GroundTruth::build(f.corpus.kb());
        let member = gt.members(2)[0];
        let title = f.corpus.kb().get(member).title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        let out = f.search(&MultiModalQuery::text(phrase), 10, 64);
        let hits = out
            .ids()
            .iter()
            .filter(|&&id| gt.is_relevant(id, 2))
            .count();
        assert!(hits >= 7, "MR text search hit {hits}/10");
    }

    #[test]
    fn multimodal_query_fuses_both_channels() {
        let f = framework();
        let rec = f.corpus.kb().get(0);
        let img = match rec.content(1).unwrap() {
            mqa_encoders::RawContent::Image(i) => i.clone(),
            _ => panic!(),
        };
        let title = rec.title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        let out = f.search(&MultiModalQuery::text_and_image(phrase, img), 5, 64);
        // Object 0 tops the image channel outright, but rank fusion with
        // the text channel (where many concept members tie) can demote the
        // exact match — MR's characteristic dilution. The fusion must
        // still keep the result set on-concept.
        let gt = GroundTruth::build(f.corpus.kb());
        let concept = f.corpus.kb().get(0).concept.unwrap();
        let hits = out
            .ids()
            .iter()
            .filter(|&&id| gt.is_relevant(id, concept))
            .count();
        assert!(
            hits >= 4,
            "MR fused top-5 only {hits} on-concept: {:?}",
            out.ids()
        );
        // two channels were searched
        assert!(out.stats.evals > 0);
    }

    #[test]
    fn merged_distances_are_sorted() {
        let f = framework();
        let title = f.corpus.kb().get(5).title.clone();
        let out = f.search(&MultiModalQuery::text(title), 10, 64);
        for w in out.results.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn describe_mentions_channels() {
        assert!(framework().describe().contains("per-modality"));
    }
}
