//! The checker's PRNG: splitmix64, chosen because every 64-bit seed —
//! including 0 — yields a well-mixed stream, so sequential seed sweeps
//! (`base..base+n`) still explore unrelated schedules.

/// A splitmix64 generator (Steele, Lea & Flood; the `java.util`
/// SplittableRandom mixer).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound` must be non-zero).
    pub fn next_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "next_index bound must be non-zero");
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = SplitMix64::new(0);
        let vals: Vec<usize> = (0..100).map(|_| r.next_index(3)).collect();
        for i in 0..3 {
            assert!(vals.contains(&i), "index {i} never drawn from seed 0");
        }
    }
}
