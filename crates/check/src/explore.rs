//! Seed sweeps: run many schedules, count the distinct interleavings
//! actually reached, and surface every failure with its replay seed.

use crate::sched::{run_schedule, CheckOptions, Failure, ThreadBody};
use std::collections::HashSet;
use std::fmt;

/// One failing schedule, carrying everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct SeededFailure {
    /// Seed to pass back to [`crate::run_schedule`] for a replay.
    pub seed: u64,
    /// What went wrong.
    pub failure: Failure,
    /// Grant order up to the failure.
    pub trace: Vec<usize>,
}

impl fmt::Display for SeededFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}: {} — replay with run_schedule({}, ..); trace {:?}",
            self.seed, self.failure, self.seed, self.trace
        )
    }
}

/// What a sweep covered.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Schedules actually run (equals the requested count unless
    /// `stop_on_failure` cut the sweep short).
    pub schedules: usize,
    /// Distinct grant traces seen — the honest coverage number, since
    /// different seeds can collapse onto the same interleaving.
    pub distinct_traces: usize,
    /// Every failing schedule, in sweep order.
    pub failures: Vec<SeededFailure>,
}

impl ExploreReport {
    /// Whether every schedule in the sweep completed.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `count` schedules over seeds `base_seed..base_seed + count`,
/// rebuilding the thread bodies (and whatever state they share) from
/// `make` for each schedule so runs stay independent.
pub fn explore<F>(base_seed: u64, count: usize, opts: &CheckOptions, make: F) -> ExploreReport
where
    F: Fn() -> Vec<ThreadBody>,
{
    let mut traces: HashSet<Vec<usize>> = HashSet::new();
    let mut failures = Vec::new();
    let mut schedules = 0usize;
    for offset in 0..count as u64 {
        let seed = base_seed.wrapping_add(offset);
        let outcome = run_schedule(seed, opts, make());
        schedules += 1;
        traces.insert(outcome.trace.clone());
        if let Some(failure) = outcome.failure {
            failures.push(SeededFailure {
                seed,
                failure,
                trace: outcome.trace,
            });
            if opts.stop_on_failure {
                break;
            }
        }
    }
    ExploreReport {
        schedules,
        distinct_traces: traces.len(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn two_counters() -> Vec<ThreadBody> {
        let shared = Arc::new(AtomicU32::new(0));
        (0..2)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let body: ThreadBody = Box::new(move |token| {
                    for _ in 0..4 {
                        token.step();
                        shared.fetch_add(1, Ordering::SeqCst);
                    }
                });
                body
            })
            .collect()
    }

    #[test]
    fn sweep_reaches_many_distinct_interleavings() {
        let report = explore(100, 60, &CheckOptions::default(), two_counters);
        assert!(report.all_ok(), "failures: {:?}", report.failures);
        assert_eq!(report.schedules, 60);
        assert!(
            report.distinct_traces >= 20,
            "only {} distinct traces out of 60 seeds",
            report.distinct_traces
        );
    }

    #[test]
    fn failing_seed_is_reported_and_replayable() {
        let make = || -> Vec<ThreadBody> {
            vec![
                Box::new(|token: &mut crate::ThreadToken| token.step()),
                Box::new(|token: &mut crate::ThreadToken| {
                    token.step();
                    panic!("always fails");
                }),
            ]
        };
        let report = explore(7, 10, &CheckOptions::default(), make);
        assert_eq!(report.schedules, 1, "stop_on_failure must cut the sweep");
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert_eq!(f.seed, 7);
        let replay = run_schedule(f.seed, &CheckOptions::default(), make());
        assert_eq!(
            replay
                .failure
                .as_ref()
                .map(|x| matches!(x, crate::Failure::Panicked { .. })),
            Some(true)
        );
        assert!(f.to_string().contains("replay with run_schedule(7"));
    }
}
