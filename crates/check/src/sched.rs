//! The permission-token scheduler: N real threads, one grant at a time.
//!
//! All coordination lives in one mutex/condvar pair ([`Ctl`]). Worker
//! threads transition their own slot (`Wants` → `Running` → `Blocked` /
//! `Finished`) and the driving thread — the caller of [`run_schedule`] —
//! owns the only decision: which `Wants` thread gets the token next.

use crate::rng::SplitMix64;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// One schedule participant: receives its token and runs to completion,
/// yielding at every [`ThreadToken::step`] / [`ThreadToken::blocking`].
pub type ThreadBody = Box<dyn FnOnce(&mut ThreadToken) + Send + 'static>;

/// Settle rounds with no state change before the scheduler trusts the
/// snapshot it is about to pick from (see [`CheckOptions::settle`]).
const SETTLE_ROUNDS: usize = 8;

/// Scheduler knobs. `Default` is tuned for engine-scale schedules: a
/// sub-millisecond settle window and a stuck timeout two orders of
/// magnitude above any legitimate wakeup handoff.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Quiet window the scheduler waits out before each pick while any
    /// thread sits in a [`ThreadToken::blocking`] region, so wakeups
    /// caused by the previous step land before the next candidate set is
    /// formed. Larger = more deterministic, slower.
    pub settle: Duration,
    /// How long the scheduler waits with no runnable thread (or with the
    /// granted thread silent) before declaring the schedule stuck.
    pub stuck_timeout: Duration,
    /// Grant budget per schedule; exceeding it is a failure (a livelock
    /// or an unbounded loop between yield points).
    pub max_steps: usize,
    /// Whether [`crate::explore`] stops sweeping at the first failing
    /// seed (the failure is replayable either way).
    pub stop_on_failure: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self {
            settle: Duration::from_micros(400),
            stuck_timeout: Duration::from_millis(200),
            max_steps: 10_000,
            stop_on_failure: true,
        }
    }
}

/// Why a schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// No thread could make progress: the listed threads were blocked
    /// (or silently holding the token) past the stuck timeout — a
    /// deadlock or lost wakeup.
    Stuck {
        /// Indices of the threads that were still blocked.
        blocked: Vec<usize>,
    },
    /// A thread body panicked (assertion failures inside bodies land
    /// here, with the panic message).
    Panicked {
        /// Index of the panicking thread.
        thread: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The grant budget ran out before every thread finished.
    MaxSteps,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Stuck { blocked } => {
                write!(f, "stuck: threads {blocked:?} blocked past the timeout")
            }
            Failure::Panicked { thread, message } => {
                write!(f, "thread {thread} panicked: {message}")
            }
            Failure::MaxSteps => write!(f, "max_steps exceeded (livelock?)"),
        }
    }
}

/// What one schedule did.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The seed that produced this schedule (replay key).
    pub seed: u64,
    /// Grant order: thread index per scheduler step.
    pub trace: Vec<usize>,
    /// `None` when every thread ran to completion.
    pub failure: Option<Failure>,
}

impl RunOutcome {
    /// Whether the schedule completed without a failure.
    pub fn is_ok(&self) -> bool {
        self.failure.is_none()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TStat {
    Wants,
    Running,
    Blocked,
    Finished,
}

struct Sched {
    stat: Vec<TStat>,
    granted: Option<usize>,
    panics: Vec<(usize, String)>,
}

struct Ctl {
    m: Mutex<Sched>,
    cv: Condvar,
}

/// Poison recovery: scheduler state is a plain table every transition
/// leaves consistent, and panics are already routed through
/// `catch_unwind`, so a poisoned lock carries no extra signal.
fn lock(ctl: &Ctl) -> MutexGuard<'_, Sched> {
    match ctl.m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait<'a>(ctl: &'a Ctl, guard: MutexGuard<'a, Sched>) -> MutexGuard<'a, Sched> {
    match ctl.cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait_timeout<'a>(
    ctl: &'a Ctl,
    guard: MutexGuard<'a, Sched>,
    dur: Duration,
) -> (MutexGuard<'a, Sched>, bool) {
    match ctl.cv.wait_timeout(guard, dur) {
        Ok((guard, timeout)) => (guard, timeout.timed_out()),
        Err(poisoned) => {
            let (guard, timeout) = poisoned.into_inner();
            (guard, timeout.timed_out())
        }
    }
}

/// A thread's permission token: the handle through which a
/// [`ThreadBody`] yields control back to the scheduler.
pub struct ThreadToken {
    ctl: Arc<Ctl>,
    id: usize,
}

impl ThreadToken {
    /// This thread's index in the schedule (its id in the trace).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Yield point: hands the token back and parks until the scheduler
    /// grants it again. Place one before every interaction with shared
    /// state whose ordering should be explored.
    pub fn step(&mut self) {
        let mut s = lock(&self.ctl);
        s.stat[self.id] = TStat::Wants;
        s.granted = None;
        self.ctl.cv.notify_all();
        let s = self.wait_for_grant(s);
        drop(s);
    }

    /// Runs `f` — a call that may block on another thread's progress —
    /// *without* holding the token, so the scheduler can keep driving
    /// the threads that will unblock it. Re-enters the schedule when
    /// `f` returns.
    pub fn blocking<R>(&mut self, f: impl FnOnce() -> R) -> R {
        {
            let mut s = lock(&self.ctl);
            s.stat[self.id] = TStat::Blocked;
            s.granted = None;
            self.ctl.cv.notify_all();
        }
        let out = f();
        let mut s = lock(&self.ctl);
        s.stat[self.id] = TStat::Wants;
        self.ctl.cv.notify_all();
        let s = self.wait_for_grant(s);
        drop(s);
        out
    }

    fn wait_for_grant<'a>(&'a self, mut s: MutexGuard<'a, Sched>) -> MutexGuard<'a, Sched> {
        while s.granted != Some(self.id) {
            s = wait(&self.ctl, s);
        }
        s.stat[self.id] = TStat::Running;
        s
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn spawn_worker(ctl: Arc<Ctl>, id: usize, body: ThreadBody) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut token = ThreadToken {
            ctl: Arc::clone(&ctl),
            id,
        };
        {
            let s = lock(&ctl);
            let s = token.wait_for_grant(s);
            drop(s);
        }
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut token)));
        let mut s = lock(&ctl);
        s.stat[id] = TStat::Finished;
        if s.granted == Some(id) {
            s.granted = None;
        }
        if let Err(payload) = result {
            s.panics.push((id, panic_message(payload)));
        }
        ctl.cv.notify_all();
    })
}

/// Runs one seeded schedule over `bodies` and reports its trace.
///
/// Replaying the same seed with the same bodies reproduces the same
/// grant order (and, up to the settle-window caveat in the crate docs,
/// the same behavior). On failure, threads that never finished are
/// leaked — they are blocked inside foreign code and cannot be joined.
pub fn run_schedule(seed: u64, opts: &CheckOptions, bodies: Vec<ThreadBody>) -> RunOutcome {
    let n = bodies.len();
    let ctl = Arc::new(Ctl {
        m: Mutex::new(Sched {
            stat: vec![TStat::Wants; n],
            granted: None,
            panics: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(id, body)| spawn_worker(Arc::clone(&ctl), id, body))
        .collect();

    let mut rng = SplitMix64::new(seed);
    let mut trace = Vec::new();
    let failure = drive(&ctl, opts, &mut rng, &mut trace);

    // Join only the threads observed Finished; the rest are stuck in
    // foreign blocking calls and are deliberately leaked.
    let finished: Vec<bool> = {
        let s = lock(&ctl);
        s.stat.iter().map(|&t| t == TStat::Finished).collect()
    };
    for (handle, done) in handles.into_iter().zip(finished) {
        if done {
            drop(handle.join());
        }
    }

    RunOutcome {
        seed,
        trace,
        failure,
    }
}

fn drive(
    ctl: &Ctl,
    opts: &CheckOptions,
    rng: &mut SplitMix64,
    trace: &mut Vec<usize>,
) -> Option<Failure> {
    let mut steps = 0usize;
    loop {
        let mut s = lock(ctl);

        // Wait for the current grant to come back. A thread that goes
        // silent while holding the token (blocked without a `blocking`
        // wrapper) is itself a stuck schedule.
        while let Some(holder) = s.granted {
            let (guard, timed_out) = wait_timeout(ctl, s, opts.stuck_timeout);
            s = guard;
            if timed_out && s.granted == Some(holder) {
                return Some(Failure::Stuck {
                    blocked: vec![holder],
                });
            }
        }

        // Settle: while any thread is in a blocking region, give wakeups
        // triggered by the previous step time to land before picking.
        if s.stat.iter().any(|&t| t == TStat::Blocked) {
            for _ in 0..SETTLE_ROUNDS {
                let before = s.stat.clone();
                let (guard, _) = wait_timeout(ctl, s, opts.settle);
                s = guard;
                if s.stat == before {
                    break;
                }
            }
        }

        if s.stat.iter().all(|&t| t == TStat::Finished) {
            return s.panics.first().map(|(thread, message)| Failure::Panicked {
                thread: *thread,
                message: message.clone(),
            });
        }

        let wants: Vec<usize> = s
            .stat
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == TStat::Wants)
            .map(|(i, _)| i)
            .collect();
        if wants.is_empty() {
            // Everyone left is blocked. Give them one stuck-timeout
            // window to surface, then declare the schedule dead.
            let (guard, timed_out) = wait_timeout(ctl, s, opts.stuck_timeout);
            s = guard;
            let still_none = !s.stat.iter().any(|&t| t == TStat::Wants);
            let all_done = s.stat.iter().all(|&t| t == TStat::Finished);
            if timed_out && still_none && !all_done {
                let blocked: Vec<usize> = s
                    .stat
                    .iter()
                    .enumerate()
                    .filter(|(_, &t)| t == TStat::Blocked)
                    .map(|(i, _)| i)
                    .collect();
                return Some(Failure::Stuck { blocked });
            }
            continue;
        }

        steps += 1;
        if steps > opts.max_steps {
            return Some(Failure::MaxSteps);
        }
        let pick = wants[rng.next_index(wants.len())];
        s.granted = Some(pick);
        trace.push(pick);
        ctl.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn counter_bodies(shared: &Arc<AtomicU32>, threads: usize, steps: usize) -> Vec<ThreadBody> {
        (0..threads)
            .map(|_| {
                let shared = Arc::clone(shared);
                let body: ThreadBody = Box::new(move |token| {
                    for _ in 0..steps {
                        token.step();
                        shared.fetch_add(1, Ordering::SeqCst);
                    }
                });
                body
            })
            .collect()
    }

    #[test]
    fn same_seed_same_trace() {
        let opts = CheckOptions::default();
        let a = run_schedule(9, &opts, counter_bodies(&Arc::new(AtomicU32::new(0)), 3, 4));
        let b = run_schedule(9, &opts, counter_bodies(&Arc::new(AtomicU32::new(0)), 3, 4));
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(a.trace, b.trace, "a seed must replay to the same trace");
        assert!(!a.trace.is_empty());
    }

    #[test]
    fn all_work_completes() {
        let shared = Arc::new(AtomicU32::new(0));
        let out = run_schedule(5, &CheckOptions::default(), counter_bodies(&shared, 4, 5));
        assert!(out.is_ok(), "failure: {:?}", out.failure);
        assert_eq!(shared.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn body_panic_is_reported_with_message() {
        let bodies: Vec<ThreadBody> = vec![
            Box::new(|token| token.step()),
            Box::new(|token| {
                token.step();
                panic!("deliberate body failure");
            }),
        ];
        let out = run_schedule(1, &CheckOptions::default(), bodies);
        match out.failure {
            Some(Failure::Panicked { thread, message }) => {
                assert_eq!(thread, 1);
                assert!(message.contains("deliberate body failure"));
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn cross_channel_deadlock_is_stuck() {
        use std::sync::mpsc::channel;
        let (tx_a, rx_a) = channel::<u8>();
        let (tx_b, rx_b) = channel::<u8>();
        // Each thread holds the sender its peer waits on and recvs first:
        // a deadlock by construction.
        let bodies: Vec<ThreadBody> = vec![
            Box::new(move |token| {
                token.step();
                let _ = token.blocking(|| rx_a.recv());
                drop(tx_b);
            }),
            Box::new(move |token| {
                token.step();
                let _ = token.blocking(|| rx_b.recv());
                drop(tx_a);
            }),
        ];
        let opts = CheckOptions {
            stuck_timeout: Duration::from_millis(50),
            ..CheckOptions::default()
        };
        let out = run_schedule(2, &opts, bodies);
        match out.failure {
            Some(Failure::Stuck { blocked }) => {
                assert_eq!(blocked, vec![0, 1], "both recv threads are stuck");
            }
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn blocking_release_lets_peers_unblock_it() {
        let (tx, rx) = std::sync::mpsc::channel::<u8>();
        let bodies: Vec<ThreadBody> = vec![
            Box::new(move |token| {
                let got = token.blocking(|| rx.recv());
                assert_eq!(got.ok(), Some(7));
            }),
            Box::new(move |token| {
                token.step();
                let _ = tx.send(7);
            }),
        ];
        let out = run_schedule(11, &CheckOptions::default(), bodies);
        assert!(out.is_ok(), "failure: {:?}", out.failure);
    }
}
