//! # mqa-check
//!
//! A deterministic schedule checker for std-threaded code, std-only.
//!
//! Concurrency bugs — lost wakeups, shutdown races, abandoned waiters —
//! hide in *interleavings*, and `cargo test` only ever sees the handful
//! the OS scheduler happens to produce. This crate runs N **real**
//! threads but serializes their progress through a permission token: at
//! every [`ThreadToken::step`] yield point the thread parks until a
//! seeded scheduler grants it the token, so which thread moves next is
//! decided by a PRNG, not the OS. The sequence of grants is the
//! **trace**; two runs with the same seed produce the same trace, so any
//! failing interleaving is replayable from its seed alone.
//!
//! Calls that genuinely block on another thread's progress (a full-queue
//! `push`, a `Ticket::wait`) are wrapped in [`ThreadToken::blocking`]:
//! the thread releases the token, runs the call for real, and re-enters
//! the scheduler when it returns. The scheduler waits a short *settle
//! window* after every grant so a blocking call woken by the previous
//! step lands back in the runnable set before the next pick — that
//! window is what keeps the exploration deterministic in practice (the
//! wakeup handoff is microseconds; the window is ~a millisecond).
//! Determinism is therefore empirical, not absolute; the distinct-trace
//! count reported by [`explore`] is the honest measure of coverage.
//!
//! When no thread is runnable and some are still blocked, the scheduler
//! waits out a stuck timeout and then reports [`Failure::Stuck`] — a
//! deadlock or lost wakeup, with the seed to replay it. Stuck threads
//! are leaked (they are blocked in foreign code and cannot be joined).
//!
//! ```
//! use mqa_check::{explore, CheckOptions, ThreadBody};
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! let report = explore(1, 40, &CheckOptions::default(), || {
//!     let shared = Arc::new(AtomicU32::new(0));
//!     (0..2)
//!         .map(|_| {
//!             let shared = Arc::clone(&shared);
//!             let body: ThreadBody = Box::new(move |token| {
//!                 for _ in 0..3 {
//!                     token.step();
//!                     shared.fetch_add(1, Ordering::SeqCst);
//!                 }
//!             });
//!             body
//!         })
//!         .collect()
//! });
//! assert!(report.failures.is_empty());
//! assert!(report.distinct_traces > 1, "seeds must reach new interleavings");
//! ```

mod explore;
mod rng;
mod sched;

pub use explore::{explore, ExploreReport, SeededFailure};
pub use rng::SplitMix64;
pub use sched::{run_schedule, CheckOptions, Failure, RunOutcome, ThreadBody, ThreadToken};
