//! The five backend components of Figure 2.
//!
//! Each component is an independently testable unit; the coordinator wires
//! the build-time ones (preprocessing → representation → indexing) into an
//! `mqa-dag` pipeline and drives the query-time ones (execution →
//! answering) per dialogue turn.

pub mod answer;
pub mod execute;
pub mod index;
pub mod preprocess;
pub mod represent;

pub use answer::AnswerGenerator;
pub use execute::QueryExecutor;
pub use index::BuiltFramework;
pub use preprocess::Preprocessed;
pub use represent::Represented;
