//! Index Construction: builds the configured retrieval framework (and
//! thereby its navigation graph(s)) over the encoded corpus.

use crate::components::represent::Represented;
use crate::config::Config;
use crate::error::MqaError;
use mqa_retrieval::{FrameworkKind, JeFramework, MrFramework, MustFramework, RetrievalFramework};
use std::sync::Arc;

/// The ready-to-query framework.
pub struct BuiltFramework {
    /// The framework behind the panel's retrieval selection.
    pub framework: Arc<dyn RetrievalFramework>,
    /// Panel description (index type, weights, modality count).
    pub description: String,
}

/// Runs the component.
///
/// # Errors
/// Currently infallible beyond configuration validation (done by the
/// coordinator before the pipeline starts); the `Result` keeps the stage
/// signature uniform for future index persistence errors.
pub fn run(rep: &Represented, config: &Config) -> Result<BuiltFramework, MqaError> {
    let framework: Arc<dyn RetrievalFramework> = match config.framework {
        FrameworkKind::Must => Arc::new(MustFramework::build(
            Arc::clone(&rep.corpus),
            rep.weights.clone(),
            config.metric,
            &config.index,
        )),
        FrameworkKind::Mr => Arc::new(MrFramework::build(
            Arc::clone(&rep.corpus),
            config.metric,
            &config.index,
        )),
        FrameworkKind::Je => Arc::new(JeFramework::build(
            Arc::clone(&rep.corpus),
            config.metric,
            &config.index,
        )),
    };
    let description = framework.describe();
    Ok(BuiltFramework {
        framework,
        description,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{preprocess, represent};
    use mqa_kb::DatasetSpec;

    fn rep() -> Represented {
        let kb = DatasetSpec::weather()
            .objects(60)
            .concepts(6)
            .seed(1)
            .generate();
        let pre = preprocess::run(kb).unwrap();
        represent::run(&pre, &Config::default()).unwrap()
    }

    #[test]
    fn builds_each_framework_kind() {
        let rep = rep();
        for kind in [FrameworkKind::Must, FrameworkKind::Mr, FrameworkKind::Je] {
            let cfg = Config {
                framework: kind,
                ..Config::default()
            };
            let built = run(&rep, &cfg).unwrap();
            assert_eq!(built.framework.kind(), kind);
            assert!(!built.description.is_empty());
        }
    }
}
