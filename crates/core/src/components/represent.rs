//! Vector Representation: encoding plus vector weight learning.
//!
//! "This module converts multi-modal objects into vectorized forms …
//! Notably, MQA introduces a vector weight learning model to discern the
//! importances of different modalities for similarity measurement."

use crate::components::preprocess::Preprocessed;
use crate::config::Config;
use crate::error::MqaError;
use mqa_encoders::EncoderRegistry;
use mqa_retrieval::{EncodedCorpus, EncoderSet};
use mqa_vector::Weights;
use mqa_weights::{LearnedWeights, WeightLearner};
use std::sync::Arc;

/// The encoded corpus and the modality weights retrieval will use.
pub struct Represented {
    /// The encoded corpus, shared by every framework built over it.
    pub corpus: Arc<EncodedCorpus>,
    /// The weights in force (learned, or uniform when learning is off /
    /// impossible).
    pub weights: Weights,
    /// Training diagnostics when learning ran.
    pub learned: Option<LearnedWeights>,
    /// Panel note explaining the weight decision.
    pub weight_note: String,
}

/// Runs the component.
///
/// # Errors
/// Propagates configuration problems as [`MqaError::InvalidConfig`]
/// (e.g. encoder choices incompatible with the schema surface as panics in
/// `mqa-retrieval`; arity mismatches are caught here first).
pub fn run(pre: &Preprocessed, config: &Config) -> Result<Represented, MqaError> {
    let registry = EncoderRegistry::new(config.encoder_seed);
    let schema = pre.kb.schema().clone();
    let encoders = match &config.encoders {
        Some(choices) => {
            if choices.len() != schema.arity() {
                return Err(MqaError::InvalidConfig(format!(
                    "{} encoder choices for a {}-modality schema",
                    choices.len(),
                    schema.arity()
                )));
            }
            EncoderSet::build(&registry, &schema, choices)
        }
        None => EncoderSet::default_for(&registry, &schema, config.embedding_dim),
    };
    let corpus = Arc::new(EncodedCorpus::encode(pre.kb.as_ref().clone(), encoders));

    let arity = corpus.store().schema().arity();
    let (weights, learned, weight_note) = if !config.weight_learning {
        (
            Weights::uniform(arity),
            None,
            "weight learning disabled; uniform weights".to_string(),
        )
    } else if let Some(labels) = corpus.concept_labels() {
        let out = WeightLearner::new(config.trainer).learn(corpus.store(), &labels);
        let note = format!(
            "learned weights {:?} (triplet accuracy {:.2})",
            out.weights
                .as_slice()
                .iter()
                .map(|w| (w * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            out.triplet_accuracy
        );
        (out.weights.clone(), Some(out), note)
    } else {
        (
            Weights::uniform(arity),
            None,
            "corpus unlabelled; weight learning skipped, uniform weights".to_string(),
        )
    };

    Ok(Represented {
        corpus,
        weights,
        learned,
        weight_note,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::preprocess;
    use mqa_encoders::EncoderChoice;
    use mqa_kb::DatasetSpec;

    fn pre() -> Preprocessed {
        // Noisy image modality so weight learning has something to find.
        let kb = DatasetSpec::weather()
            .objects(120)
            .concepts(6)
            .caption_noise(0.02)
            .image_noise(0.9)
            .seed(1)
            .generate();
        preprocess::run(kb).unwrap()
    }

    #[test]
    fn learning_on_labelled_corpus_departs_from_uniform() {
        let r = run(&pre(), &Config::default()).unwrap();
        assert!(r.learned.is_some());
        let w = r.weights.as_slice();
        assert!((w[0] - w[1]).abs() > 0.1, "weights stayed uniform: {w:?}");
        assert!(r.weight_note.contains("learned"));
    }

    #[test]
    fn learning_toggle_off_gives_uniform() {
        let cfg = Config {
            weight_learning: false,
            ..Config::default()
        };
        let r = run(&pre(), &cfg).unwrap();
        assert!(r.learned.is_none());
        assert_eq!(r.weights, Weights::uniform(2));
        assert!(r.weight_note.contains("disabled"));
    }

    #[test]
    fn explicit_encoder_choices_respected() {
        let cfg = Config {
            encoders: Some(vec![
                EncoderChoice::LstmText { dim: 24 },
                EncoderChoice::VisualResnet {
                    raw_dim: 64,
                    dim: 48,
                },
            ]),
            ..Config::default()
        };
        let r = run(&pre(), &cfg).unwrap();
        assert_eq!(r.corpus.store().schema().dim(0), 24);
        assert_eq!(r.corpus.store().schema().dim(1), 48);
    }

    #[test]
    fn wrong_choice_count_rejected() {
        let cfg = Config {
            encoders: Some(vec![EncoderChoice::HashingText { dim: 8 }]),
            ..Config::default()
        };
        assert!(matches!(run(&pre(), &cfg), Err(MqaError::InvalidConfig(_))));
    }
}
