//! Data Preprocessing: knowledge-base validation and summary statistics.
//!
//! "This component integrates a multi-modal knowledge base into MQA. Data
//! is stored as an object collection with unique IDs for indexing." The
//! ingestion/validation work itself lives in `mqa-kb`; this component is
//! the pipeline stage that admits a base into the system and produces the
//! counts the status panel displays.

use crate::error::MqaError;
use mqa_kb::{CorpusStats, KnowledgeBase};
use std::sync::Arc;

/// The admitted knowledge base plus its panel statistics.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The knowledge base, shared across components.
    pub kb: Arc<KnowledgeBase>,
    /// Number of objects.
    pub object_count: usize,
    /// Number of schema modalities.
    pub modality_count: usize,
    /// Number of objects with at least one missing modality.
    pub partial_objects: usize,
    /// Whether the corpus carries relevance labels (generated corpora do;
    /// user ingestion does not), i.e. whether weight learning can train.
    pub labelled: bool,
    /// Detailed corpus statistics for the status panel.
    pub stats: CorpusStats,
}

/// Runs the component.
///
/// # Errors
/// Returns [`MqaError::EmptyKnowledgeBase`] for a base with no objects.
pub fn run(kb: KnowledgeBase) -> Result<Preprocessed, MqaError> {
    if kb.is_empty() {
        return Err(MqaError::EmptyKnowledgeBase);
    }
    let modality_count = kb.schema().arity();
    let mut partial_objects = 0usize;
    let mut labelled = true;
    for (_, r) in kb.iter() {
        if r.present_count() < modality_count {
            partial_objects += 1;
        }
        if r.concept.is_none() {
            labelled = false;
        }
    }
    Ok(Preprocessed {
        object_count: kb.len(),
        modality_count,
        partial_objects,
        labelled,
        stats: CorpusStats::compute(&kb),
        kb: Arc::new(kb),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_encoders::RawContent;
    use mqa_kb::{ContentSchema, DatasetSpec, ObjectRecord};

    #[test]
    fn generated_corpus_is_labelled_and_complete() {
        let kb = DatasetSpec::weather()
            .objects(20)
            .concepts(4)
            .seed(1)
            .generate();
        let p = run(kb).unwrap();
        assert_eq!(p.object_count, 20);
        assert_eq!(p.modality_count, 2);
        assert_eq!(p.partial_objects, 0);
        assert!(p.labelled);
    }

    #[test]
    fn user_ingestion_is_unlabelled() {
        let mut kb = KnowledgeBase::new("user", ContentSchema::caption_image(4));
        kb.ingest(ObjectRecord::new(
            "a",
            vec![Some(RawContent::text("hello")), None],
        ))
        .unwrap();
        let p = run(kb).unwrap();
        assert!(!p.labelled);
        assert_eq!(p.partial_objects, 1);
    }

    #[test]
    fn empty_base_rejected() {
        let kb = KnowledgeBase::new("empty", ContentSchema::caption_image(4));
        assert_eq!(run(kb).unwrap_err(), MqaError::EmptyKnowledgeBase);
    }
}
