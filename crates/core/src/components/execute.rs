//! Query Execution: query augmentation with a selected prior result, then
//! framework search.
//!
//! "Notably, any previous outcome can be chosen to augment the current
//! user query input (as indicated by the dotted arrow in the backend of
//! Figure 2), promoting an intelligent multi-modal search procedure."

use mqa_cache::{Fingerprint, ResultCache};
use mqa_encoders::RawContent;
use mqa_engine::{Deadline, EngineError, QueryEngine, TicketError};
use mqa_kb::{KnowledgeBase, ObjectId};
use mqa_retrieval::{MultiModalQuery, RetrievalFramework, RetrievalOutput};
use mqa_vector::ModalityKind;
use std::sync::Arc;

/// The per-turn execution unit: framework + result-set parameters.
pub struct QueryExecutor {
    framework: Arc<dyn RetrievalFramework>,
    engine: Option<Arc<QueryEngine>>,
    cache: Option<Arc<ResultCache<RetrievalOutput>>>,
    context_fp: u64,
    k: usize,
    ef: usize,
}

impl QueryExecutor {
    /// Creates the executor.
    ///
    /// # Panics
    /// Panics if `k == 0` (config validation happens earlier; this is the
    /// last line of defence).
    pub fn new(framework: Arc<dyn RetrievalFramework>, k: usize, ef: usize) -> Self {
        assert!(k > 0, "result count must be >= 1");
        Self {
            framework,
            engine: None,
            cache: None,
            context_fp: 0,
            k,
            ef: ef.max(k),
        }
    }

    /// Routes subsequent turns through `engine`'s worker pool instead of
    /// searching on the calling thread.
    pub fn set_engine(&mut self, engine: Arc<QueryEngine>) {
        self.engine = Some(engine);
    }

    /// The engine in use, if any.
    pub fn engine(&self) -> Option<&Arc<QueryEngine>> {
        self.engine.as_ref()
    }

    /// Attaches a turn-level result cache. `context_fp` fingerprints the
    /// context cached answers are valid under (index configuration +
    /// modality weights); it keys every entry, so a refreshed fingerprint
    /// makes stale answers unreachable even without invalidation.
    pub fn set_cache(&mut self, cache: Arc<ResultCache<RetrievalOutput>>, context_fp: u64) {
        self.cache = Some(cache);
        self.context_fp = context_fp;
    }

    /// The attached result cache, if any.
    pub fn cache(&self) -> Option<&Arc<ResultCache<RetrievalOutput>>> {
        self.cache.as_ref()
    }

    /// Swaps the framework searches go to (weight re-learning rebuilds
    /// the index over the same corpus).
    pub(crate) fn set_framework(&mut self, framework: Arc<dyn RetrievalFramework>) {
        self.framework = framework;
    }

    /// Fingerprints everything that determines a turn's retrieval answer:
    /// the executor's context (index config + weights) plus the query
    /// content and result-set parameters.
    fn turn_fingerprint(&self, query: &MultiModalQuery, k: usize, ef: usize) -> u64 {
        Fingerprint::new()
            .u64(self.context_fp)
            .opt_str(query.text.as_deref())
            .opt_f32_slice(query.image.as_ref().map(|i| i.features()))
            .opt_f32_slice(query.weight_override.as_deref())
            .usize(k)
            .usize(ef)
            .finish()
    }

    /// Searches through the engine when one is attached (falling back to
    /// the serial path if the engine refuses work), serially otherwise. A
    /// repeated turn is served from the result cache when one is attached
    /// (the replay carries the original call's stats and latency).
    fn search(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
        let keyed = self
            .cache
            .as_ref()
            .map(|cache| (cache, self.turn_fingerprint(query, k, ef)));
        if let Some((cache, key)) = &keyed {
            if let Some(out) = cache.get(*key) {
                mqa_obs::trace::note_cache(true);
                return out;
            }
        }
        let out = self.search_uncached(query, k, ef);
        if let Some((cache, key)) = keyed {
            mqa_obs::trace::note_cache(false);
            cache.insert(key, out.clone());
        }
        out
    }

    fn search_uncached(&self, query: &MultiModalQuery, k: usize, ef: usize) -> RetrievalOutput {
        if let Some(engine) = &self.engine {
            match engine.retrieve(query.clone(), k, ef) {
                Ok(out) => return out,
                // A refusal means shutdown (or, on this deadline-less
                // path, admission control) is racing this turn; the turn
                // still deserves an answer, so degrade to the serial path.
                Err(
                    EngineError::QueueFull
                    | EngineError::ShuttingDown
                    | EngineError::Canceled
                    | EngineError::Rejected
                    | EngineError::Expired,
                ) => {
                    mqa_obs::trace::note_serial_fallback();
                }
            }
        }
        self.framework.search(query, k, ef)
    }

    /// Searches under a per-turn latency budget. Unlike the deadline-less
    /// path, a load shed here is a *typed outcome*, not a silent serial
    /// retry: `Rejected` / `Expired` propagate to the caller, who chose
    /// the budget. Only `Canceled` (shutdown racing the turn) degrades to
    /// the serial path, since no load-shedding decision was made. A cache
    /// hit answers within any budget.
    ///
    /// # Errors
    /// [`TicketError::Rejected`] or [`TicketError::Expired`] when the
    /// engine sheds the query.
    pub fn run_with_deadline(
        &self,
        query: &MultiModalQuery,
        k: usize,
        budget_us: u64,
    ) -> Result<RetrievalOutput, TicketError> {
        let ef = self.ef.max(k);
        let deadline = Deadline::in_us(budget_us);
        mqa_obs::trace::note_deadline_budget(budget_us);
        let keyed = self
            .cache
            .as_ref()
            .map(|cache| (cache, self.turn_fingerprint(query, k, ef)));
        if let Some((cache, key)) = &keyed {
            if let Some(out) = cache.get(*key) {
                mqa_obs::trace::note_cache(true);
                return Ok(out);
            }
        }
        let out = match &self.engine {
            Some(engine) => {
                match engine.retrieve_with_deadline(query.clone(), k, ef, Some(deadline)) {
                    Ok(out) => out,
                    Err(err @ (TicketError::Rejected | TicketError::Expired)) => return Err(err),
                    Err(TicketError::Canceled) => {
                        mqa_obs::trace::note_serial_fallback();
                        self.framework.search(query, k, ef)
                    }
                }
            }
            // No engine: the serial path cannot be overloaded by other
            // sessions, so the turn is simply served.
            None => self.framework.search(query, k, ef),
        };
        if let Some((cache, key)) = keyed {
            mqa_obs::trace::note_cache(false);
            cache.insert(key, out.clone());
        }
        Ok(out)
    }

    /// Augments `query` with the image content of a selected prior result:
    /// the selected object's first image/video-kind content becomes the
    /// query's reference image (unless the user supplied one explicitly).
    pub fn augment_with_selection(
        query: &mut MultiModalQuery,
        kb: &KnowledgeBase,
        selected: ObjectId,
    ) {
        if query.image.is_some() {
            return;
        }
        // A stale selection id (e.g. after corpus invalidation) degrades to
        // "no reference image" instead of panicking mid-dialogue.
        let Some(record) = kb.try_get(selected) else {
            return;
        };
        for (m, field) in kb.schema().fields().iter().enumerate() {
            if matches!(field.kind, ModalityKind::Image | ModalityKind::Video) {
                if let Some(RawContent::Image(img)) = record.content(m) {
                    query.image = Some(img.clone());
                    return;
                }
            }
        }
    }

    /// Runs the search with the configured result count.
    pub fn run(&self, query: &MultiModalQuery) -> RetrievalOutput {
        self.search(query, self.k, self.ef)
    }

    /// Runs the search with an explicit result count (exclusion filtering
    /// and diversification over-fetch; `ef` widens along with `k`).
    pub fn run_with_k(&self, query: &MultiModalQuery, k: usize) -> RetrievalOutput {
        self.search(query, k, self.ef.max(k))
    }

    /// Result-set size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Search effort.
    pub fn ef(&self) -> usize {
        self.ef
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_kb::DatasetSpec;

    #[test]
    fn augmentation_grafts_selected_image() {
        let kb = DatasetSpec::weather()
            .objects(10)
            .concepts(2)
            .seed(1)
            .generate();
        let mut q = MultiModalQuery::text("more like this");
        QueryExecutor::augment_with_selection(&mut q, &kb, 3);
        let grafted = q.image.expect("image grafted");
        match kb.get(3).content(1).unwrap() {
            RawContent::Image(img) => assert_eq!(&grafted, img),
            _ => panic!("image field expected"),
        }
    }

    #[test]
    fn explicit_image_wins_over_selection() {
        let kb = DatasetSpec::weather()
            .objects(10)
            .concepts(2)
            .seed(1)
            .generate();
        let user_img = mqa_encoders::ImageData::new(vec![9.0; 64]);
        let mut q = MultiModalQuery::text_and_image("x", user_img.clone());
        QueryExecutor::augment_with_selection(&mut q, &kb, 3);
        assert_eq!(q.image, Some(user_img));
    }

    #[test]
    fn text_only_base_leaves_query_unchanged() {
        use mqa_encoders::RawContent;
        use mqa_kb::{ContentSchema, FieldSpec, KnowledgeBase, ObjectRecord};
        let mut kb = KnowledgeBase::new(
            "texts",
            ContentSchema::new(
                vec![FieldSpec {
                    name: "body".into(),
                    kind: ModalityKind::Text,
                }],
                0,
            ),
        );
        kb.ingest(ObjectRecord::new(
            "t",
            vec![Some(RawContent::text("hello"))],
        ))
        .unwrap();
        let mut q = MultiModalQuery::text("more");
        QueryExecutor::augment_with_selection(&mut q, &kb, 0);
        assert!(q.image.is_none());
    }
}
