//! Answer Generation: prompt assembly over retrieved results and LLM
//! summarization.
//!
//! "The user's query is simultaneously dispatched to both the query
//! execution module and the LLM as a prompt. The search results … are then
//! redirected to the LLM. The final user response is a summary from the
//! LLM. In the absence of an available LLM, users can still carry out a
//! multi-modal QA procedure through direct engagement with the query
//! execution module."

use mqa_encoders::RawContent;
use mqa_kb::{KnowledgeBase, ObjectId};
use mqa_llm::{Completion, ContextEntry, LanguageModel, LlmChoice, MockChatModel, Prompt};
use mqa_vector::Candidate;
use std::sync::Arc;

/// Maximum snippet length fed to the prompt per result.
const SNIPPET_CHARS: usize = 120;

/// The per-turn answering unit.
pub struct AnswerGenerator {
    llm: Option<Arc<dyn LanguageModel>>,
    temperature: f32,
}

impl AnswerGenerator {
    /// Instantiates the configured LLM (or none).
    pub fn from_choice(choice: &LlmChoice, temperature: f32) -> Self {
        let llm: Option<Arc<dyn LanguageModel>> = match choice {
            LlmChoice::None => None,
            LlmChoice::Mock { seed } => Some(Arc::new(MockChatModel::new(*seed))),
        };
        Self { llm, temperature }
    }

    /// Whether an LLM is wired in.
    pub fn has_llm(&self) -> bool {
        self.llm.is_some()
    }

    /// The model name, for the status panel.
    pub fn model_name(&self) -> &str {
        self.llm
            .as_deref()
            .map(LanguageModel::name)
            .unwrap_or("none")
    }

    /// Builds the context entries for a result list.
    pub fn context_entries(
        kb: &KnowledgeBase,
        results: &[Candidate],
        preferred: Option<ObjectId>,
    ) -> Vec<ContextEntry> {
        results
            .iter()
            .filter_map(|c| {
                // A candidate whose id no longer resolves (stale cache hit
                // across an ingest) is dropped rather than panicking.
                let record = kb.try_get(c.id)?;
                let snippet = record
                    .contents
                    .iter()
                    .find_map(|slot| match slot {
                        Some(RawContent::Text(t)) | Some(RawContent::Audio(t)) => {
                            Some(t.chars().take(SNIPPET_CHARS).collect::<String>())
                        }
                        _ => None,
                    })
                    .unwrap_or_else(|| "(no textual content)".to_string());
                Some(ContextEntry {
                    id: c.id,
                    title: record.title.clone(),
                    snippet,
                    distance: c.dist,
                    preferred: preferred == Some(c.id),
                })
            })
            .collect()
    }

    /// Generates the reply for a turn. Returns `None` when no LLM is
    /// configured (the QA panel then shows raw results only).
    pub fn generate(
        &self,
        query_text: &str,
        context: Vec<ContextEntry>,
        history: &[String],
    ) -> Option<Completion> {
        let llm = self.llm.as_deref()?;
        let mut prompt = Prompt::with_context(query_text, context);
        for h in history {
            prompt.push_history(h.clone());
        }
        Some(llm.generate(&prompt, self.temperature))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_kb::DatasetSpec;

    fn kb() -> KnowledgeBase {
        DatasetSpec::weather()
            .objects(10)
            .concepts(2)
            .seed(1)
            .generate()
    }

    #[test]
    fn context_entries_carry_titles_and_preference() {
        let kb = kb();
        let results = vec![Candidate::new(2, 0.5), Candidate::new(7, 0.9)];
        let entries = AnswerGenerator::context_entries(&kb, &results, Some(7));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].title, kb.get(2).title);
        assert!(!entries[0].preferred);
        assert!(entries[1].preferred);
        assert!(!entries[0].snippet.is_empty());
    }

    #[test]
    fn mock_llm_generates_grounded_reply() {
        let kb = kb();
        let gen = AnswerGenerator::from_choice(&LlmChoice::Mock { seed: 1 }, 0.0);
        assert!(gen.has_llm());
        assert_eq!(gen.model_name(), "mock-chat");
        let entries = AnswerGenerator::context_entries(&kb, &[Candidate::new(0, 0.1)], None);
        let reply = gen.generate("foggy clouds", entries, &[]).unwrap();
        assert!(reply.grounded);
        assert!(reply.text.contains(&kb.get(0).title));
    }

    #[test]
    fn no_llm_returns_none() {
        let gen = AnswerGenerator::from_choice(&LlmChoice::None, 0.0);
        assert!(!gen.has_llm());
        assert_eq!(gen.model_name(), "none");
        assert!(gen.generate("q", vec![], &[]).is_none());
    }

    #[test]
    fn history_is_threaded_into_prompt() {
        // Indirect check: history changes the prompt seed, so a nonzero
        // temperature changes sampling; at t=0 the reply stays stable.
        let kb = kb();
        let gen = AnswerGenerator::from_choice(&LlmChoice::Mock { seed: 1 }, 0.0);
        let entries = AnswerGenerator::context_entries(&kb, &[Candidate::new(0, 0.1)], None);
        let a = gen.generate("q", entries.clone(), &[]).unwrap();
        let b = gen
            .generate("q", entries, &["earlier turn".to_string()])
            .unwrap();
        assert_eq!(a.grounded, b.grounded);
        // history adds prompt tokens
        assert!(b.tokens > a.tokens);
    }
}
