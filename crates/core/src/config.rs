//! The configuration panel (① in Figure 3) as a serializable value.
//!
//! Every knob of the paper's frontend is here: encoder selection, the
//! vector-weight-learning toggle, index method and parameters, retrieval
//! framework and result-set size, LLM choice and temperature. A
//! [`Config`] serializes to JSON so panel state can be exported, shared
//! and replayed.

use crate::error::MqaError;
use mqa_encoders::EncoderChoice;
use mqa_graph::IndexAlgorithm;
use mqa_llm::LlmChoice;
use mqa_retrieval::FrameworkKind;
use mqa_vector::Metric;
use mqa_weights::TrainerConfig;
use serde::{Deserialize, Serialize};

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Per-field encoder choices; `None` picks sensible defaults for the
    /// knowledge base's schema at [`Config::embedding_dim`] dimensions.
    pub encoders: Option<Vec<EncoderChoice>>,
    /// Embedding dimensionality used by the default encoder selection.
    pub embedding_dim: usize,
    /// Model seed: all encoders are deterministic in it.
    pub encoder_seed: u64,
    /// The vector-weight-learning toggle. When off (or when the corpus has
    /// no labels to train on), uniform weights are used.
    pub weight_learning: bool,
    /// Hyper-parameters of the weight learner.
    pub trainer: TrainerConfig,
    /// Distance metric.
    pub metric: Metric,
    /// Index method and parameters.
    pub index: IndexAlgorithm,
    /// Retrieval framework.
    pub framework: FrameworkKind,
    /// Result-set size (`k`).
    pub k: usize,
    /// Search effort (beam width `ef`).
    pub ef: usize,
    /// LLM selection.
    pub llm: LlmChoice,
    /// LLM output-variability control.
    pub temperature: f32,
    /// Dialogue context carry-over: when on, a turn's retrieval text is
    /// augmented with the previous turn's text, so terse refinements
    /// ("more like this one") inherit the session's topic even without a
    /// click.
    pub carry_history: bool,
    /// Result diversification: `Some(λ)` re-ranks an over-fetched pool by
    /// Maximal Marginal Relevance so the QA panel shows `k` *distinct*
    /// options instead of near-duplicates (`λ = 1` ≡ plain ranking; `None`
    /// disables the over-fetch entirely).
    pub diversify: Option<f32>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            encoders: None,
            embedding_dim: 64,
            encoder_seed: 0,
            weight_learning: true,
            trainer: TrainerConfig::default(),
            metric: Metric::L2,
            index: IndexAlgorithm::mqa_graph(),
            framework: FrameworkKind::Must,
            k: 5,
            ef: 64,
            llm: LlmChoice::Mock { seed: 0 },
            temperature: 0.0,
            carry_history: false,
            diversify: None,
        }
    }
}

impl Config {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`MqaError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), MqaError> {
        if self.k == 0 {
            return Err(MqaError::InvalidConfig(
                "result count k must be >= 1".into(),
            ));
        }
        if self.ef < self.k {
            return Err(MqaError::InvalidConfig(format!(
                "search effort ef ({}) must be >= k ({})",
                self.ef, self.k
            )));
        }
        if self.embedding_dim == 0 && self.encoders.is_none() {
            return Err(MqaError::InvalidConfig(
                "embedding dimension must be >= 1".into(),
            ));
        }
        if !(self.temperature.is_finite() && self.temperature >= 0.0) {
            return Err(MqaError::InvalidConfig(
                "temperature must be a finite non-negative number".into(),
            ));
        }
        if let Some(lambda) = self.diversify {
            if !(0.0..=1.0).contains(&lambda) {
                return Err(MqaError::InvalidConfig(format!(
                    "diversification lambda {lambda} must be in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Exports the panel state as JSON.
    pub fn to_json(&self) -> String {
        // The in-tree serializer writes to a String and cannot fail.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Imports panel state from JSON.
    ///
    /// # Errors
    /// Returns [`MqaError::InvalidConfig`] with the parse error message.
    pub fn from_json(json: &str) -> Result<Self, MqaError> {
        serde_json::from_str(json).map_err(|e| MqaError::InvalidConfig(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(Config::default().validate().is_ok());
    }

    #[test]
    fn zero_k_rejected() {
        let cfg = Config {
            k: 0,
            ..Config::default()
        };
        assert!(matches!(cfg.validate(), Err(MqaError::InvalidConfig(_))));
    }

    #[test]
    fn ef_below_k_rejected() {
        let cfg = Config {
            k: 10,
            ef: 5,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn negative_temperature_rejected() {
        let cfg = Config {
            temperature: -0.5,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn json_round_trip() {
        let cfg = Config {
            k: 7,
            framework: FrameworkKind::Mr,
            ..Config::default()
        };
        let back = Config::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn bad_json_rejected() {
        assert!(Config::from_json("{").is_err());
    }
}
