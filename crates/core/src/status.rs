//! The status-monitoring panel (② in Figure 3).
//!
//! "Milestones such as data preprocessing, vector representation, and index
//! construction are visibly tracked with tick marks and relevant details,
//! encompassing encoder details, modal counts, vector dimensions, index
//! types, retrieval frameworks, and LLM specifics."

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The five tracked pipeline milestones, in flow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Milestone {
    /// Knowledge-base ingestion and validation.
    DataPreprocessing,
    /// Encoding and weight learning.
    VectorRepresentation,
    /// Navigation-graph construction.
    IndexConstruction,
    /// Retrieval readiness (updated per query with live counters).
    QueryExecution,
    /// LLM wiring (updated per generated reply).
    AnswerGeneration,
}

impl Milestone {
    /// All milestones in flow order.
    pub const ALL: [Milestone; 5] = [
        Milestone::DataPreprocessing,
        Milestone::VectorRepresentation,
        Milestone::IndexConstruction,
        Milestone::QueryExecution,
        Milestone::AnswerGeneration,
    ];

    /// Panel label.
    pub fn label(self) -> &'static str {
        match self {
            Milestone::DataPreprocessing => "Data Preprocessing",
            Milestone::VectorRepresentation => "Vector Representation",
            Milestone::IndexConstruction => "Index Construction",
            Milestone::QueryExecution => "Query Execution",
            Milestone::AnswerGeneration => "Answer Generation",
        }
    }
}

/// One milestone's tracked state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Entry {
    done: bool,
    details: Vec<String>,
    elapsed: Option<Duration>,
}

/// The live status panel.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusMonitor {
    entries: [Entry; 5],
}

impl StatusMonitor {
    /// A panel with every milestone pending.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(m: Milestone) -> usize {
        // `ALL` lists the variants in declaration order, so the
        // discriminant is the panel row.
        m as usize
    }

    /// Marks a milestone complete with its wall-clock duration.
    pub fn complete(&mut self, m: Milestone, elapsed: Duration) {
        let e = &mut self.entries[Self::idx(m)];
        e.done = true;
        e.elapsed = Some(elapsed);
    }

    /// Attaches detail lines to a milestone (encoder names, vector dims,
    /// index type, obs-report fragments, …). Detail lines accumulate; a
    /// multi-line fragment is split into one detail per line and blank
    /// lines are dropped, so feeding an empty fragment is a no-op.
    pub fn detail(&mut self, m: Milestone, line: impl Into<String>) {
        let fragment = line.into();
        self.entries[Self::idx(m)].details.extend(
            fragment
                .lines()
                .map(str::trim_end)
                .filter(|l| !l.trim().is_empty())
                .map(String::from),
        );
    }

    /// Whether a milestone is ticked.
    pub fn is_done(&self, m: Milestone) -> bool {
        self.entries[Self::idx(m)].done
    }

    /// Detail lines of a milestone.
    pub fn details(&self, m: Milestone) -> &[String] {
        &self.entries[Self::idx(m)].details
    }

    /// Recorded duration of a milestone, if complete.
    pub fn elapsed(&self, m: Milestone) -> Option<Duration> {
        self.entries[Self::idx(m)].elapsed
    }

    /// Renders the panel as text (the examples' stand-in for the React
    /// frontend).
    pub fn render(&self) -> String {
        let mut out = String::from("── Status Monitoring ──────────────────────\n");
        for m in Milestone::ALL {
            let e = &self.entries[Self::idx(m)];
            let tick = if e.done { "✓" } else { "·" };
            let time = e
                .elapsed
                .map(|d| format!(" ({:.1} ms)", d.as_secs_f64() * 1e3))
                .unwrap_or_default();
            out.push_str(&format!("{tick} {}{}\n", m.label(), time));
            for d in &e.details {
                out.push_str(&format!("    {d}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_pending() {
        let s = StatusMonitor::new();
        for m in Milestone::ALL {
            assert!(!s.is_done(m));
            assert!(s.elapsed(m).is_none());
        }
    }

    #[test]
    fn complete_and_detail_accumulate() {
        let mut s = StatusMonitor::new();
        s.detail(
            Milestone::VectorRepresentation,
            "encoders: hashing-text + visual-resnet",
        );
        s.detail(Milestone::VectorRepresentation, "dims: 64 + 64");
        s.complete(Milestone::VectorRepresentation, Duration::from_millis(12));
        assert!(s.is_done(Milestone::VectorRepresentation));
        assert_eq!(s.details(Milestone::VectorRepresentation).len(), 2);
        assert_eq!(
            s.elapsed(Milestone::VectorRepresentation),
            Some(Duration::from_millis(12))
        );
    }

    #[test]
    fn render_shows_ticks_and_details() {
        let mut s = StatusMonitor::new();
        s.detail(Milestone::IndexConstruction, "index: mqa-graph");
        s.complete(Milestone::IndexConstruction, Duration::from_millis(5));
        let r = s.render();
        assert!(r.contains("✓ Index Construction"));
        assert!(r.contains("index: mqa-graph"));
        assert!(r.contains("· Data Preprocessing"));
    }

    #[test]
    fn render_pins_fully_completed_run() {
        let mut s = StatusMonitor::new();
        for (i, m) in Milestone::ALL.into_iter().enumerate() {
            s.complete(m, Duration::from_millis((i as u64 + 1) * 10));
        }
        assert_eq!(
            s.render(),
            "── Status Monitoring ──────────────────────\n\
             ✓ Data Preprocessing (10.0 ms)\n\
             ✓ Vector Representation (20.0 ms)\n\
             ✓ Index Construction (30.0 ms)\n\
             ✓ Query Execution (40.0 ms)\n\
             ✓ Answer Generation (50.0 ms)\n"
        );
    }

    #[test]
    fn detail_accepts_empty_and_multiline_fragments() {
        let mut s = StatusMonitor::new();
        // Empty / whitespace-only obs fragments are no-ops, not panics.
        s.detail(Milestone::QueryExecution, "");
        s.detail(Milestone::QueryExecution, "\n\n  \n");
        assert!(s.details(Milestone::QueryExecution).is_empty());
        // A multi-line report fragment becomes one detail per line.
        s.detail(
            Milestone::QueryExecution,
            "Query Execution: 4.20 ms total\n\nAnswer Generation: 800 µs\n",
        );
        assert_eq!(
            s.details(Milestone::QueryExecution),
            &[
                "Query Execution: 4.20 ms total".to_string(),
                "Answer Generation: 800 µs".to_string(),
            ]
        );
        let rendered = s.render();
        assert!(rendered.contains("    Query Execution: 4.20 ms total\n"));
    }

    #[test]
    fn labels_cover_figure_two() {
        let labels: Vec<_> = Milestone::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Data Preprocessing",
                "Vector Representation",
                "Index Construction",
                "Query Execution",
                "Answer Generation"
            ]
        );
    }
}
