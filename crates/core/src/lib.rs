//! # mqa-core
//!
//! The MQA system itself: the five backend components of the paper's
//! Figure 2 — Data Preprocessing, Vector Representation, Index
//! Construction, Query Execution, Answer Generation — orchestrated by a
//! [`coordinator::MqaSystem`] ("the coordinator serves as the system's
//! central nexus"), plus the three frontend working panels of Figure 3
//! modelled as APIs: configuration ([`config::Config`]), status monitoring
//! ([`status::StatusMonitor`]) and QA engagement
//! ([`dialogue::DialogueSession`]).
//!
//! Build-time data flow (run as an `mqa-dag` pipeline, so the status panel
//! gets true per-component timings):
//!
//! ```text
//! KnowledgeBase ──▶ DataPreprocessing ──▶ VectorRepresentation ──▶ IndexConstruction
//!                     (validate, count)     (encode, learn weights)   (framework + graph)
//! ```
//!
//! Query-time flow, per dialogue turn:
//!
//! ```text
//! Turn ──▶ QueryExecution (augment with selected result, search) ──┐
//!   └────▶ AnswerGeneration (prompt = query + results, LLM) ◀──────┘──▶ Reply
//! ```

pub mod components;
pub mod config;
pub mod coordinator;
pub mod dialogue;
pub mod error;
pub mod panels;
pub mod status;

pub use config::Config;
pub use coordinator::MqaSystem;
pub use dialogue::{DialogueSession, Reply, RetrievedItem, Turn};
pub use error::MqaError;
pub use status::{Milestone, StatusMonitor};
