//! Text renderings of the three working panels (Figure 3), used by the
//! examples in place of the paper's React frontend.

use crate::config::Config;
use crate::coordinator::MqaSystem;
use crate::dialogue::Reply;
use mqa_encoders::EncoderRegistry;

/// Renders the configuration panel: available options plus current values.
pub fn render_config_panel(config: &Config) -> String {
    let mut out = String::from("── Configuration ──────────────────────────\n");
    out.push_str("knowledge base   : (select at build time; external ingestion optional)\n");
    out.push_str(&format!(
        "embedding        : {} [available: {}]\n",
        config
            .encoders
            .as_ref()
            .map(|cs| cs
                .iter()
                .map(|c| c.display_name())
                .collect::<Vec<_>>()
                .join(" + "))
            .unwrap_or_else(|| format!("defaults @ {}d", config.embedding_dim)),
        EncoderRegistry::available().join(", ")
    ));
    out.push_str(&format!(
        "weight learning  : {}\n",
        if config.weight_learning { "on" } else { "off" }
    ));
    out.push_str(&format!("index            : {}\n", config.index.name()));
    out.push_str(&format!(
        "retrieval        : {} (k={}, ef={})\n",
        config.framework.name(),
        config.k,
        config.ef
    ));
    out.push_str(&format!(
        "llm              : {} (temperature {})\n",
        config.llm.display_name(),
        config.temperature
    ));
    out
}

/// Renders the status panel (delegates to the live monitor).
pub fn render_status_panel(system: &MqaSystem) -> String {
    system.status().render()
}

/// Renders one QA-panel exchange.
pub fn render_qa_exchange(user_text: &str, reply: &Reply) -> String {
    let mut out = String::new();
    out.push_str(&format!("you ▸ {user_text}\n"));
    if let Some(msg) = &reply.message {
        for line in msg.lines() {
            out.push_str(&format!("mqa ▸ {line}\n"));
        }
    } else {
        out.push_str("mqa ▸ (results below — no LLM configured)\n");
    }
    for (i, item) in reply.results.iter().enumerate() {
        out.push_str(&format!(
            "      [{}] {} (d={:.3})\n",
            i, item.title, item.distance
        ));
    }
    out.push_str(&format!(
        "      round {} · {:.2} ms · {} distance evals\n",
        reply.round,
        reply.latency.as_secs_f64() * 1e3,
        reply.stats.evals
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialogue::Turn;
    use mqa_kb::DatasetSpec;

    #[test]
    fn config_panel_lists_all_knobs() {
        let p = render_config_panel(&Config::default());
        assert!(p.contains("weight learning  : on"));
        assert!(p.contains("mqa-graph"));
        assert!(p.contains("MUST"));
        assert!(p.contains("hashing-text"));
    }

    #[test]
    fn qa_exchange_renders_results() {
        let kb = DatasetSpec::weather()
            .objects(40)
            .concepts(4)
            .seed(1)
            .generate();
        let sys = MqaSystem::build(Config::default(), kb).unwrap();
        let title = sys.corpus().kb().get(0).title.clone();
        let reply = sys.ask_once(Turn::text(title.clone())).unwrap();
        let text = render_qa_exchange(&title, &reply);
        assert!(text.contains("you ▸"));
        assert!(text.contains("[0]"));
        assert!(text.contains("round 1"));
        let status = render_status_panel(&sys);
        assert!(status.contains("✓ Index Construction"));
    }
}
