//! System-level error type.

use std::fmt;

/// Everything the coordinator can report to the frontend's feedback
/// pop-up (bottom-right of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqaError {
    /// The selected knowledge base holds no objects.
    EmptyKnowledgeBase,
    /// Configuration rejected (message explains which knob).
    InvalidConfig(String),
    /// A build pipeline stage failed.
    BuildFailed(String),
    /// A dialogue turn carried no content at all.
    EmptyTurn,
    /// A turn selected a result index that the previous reply didn't have.
    BadSelection {
        /// The requested index.
        index: usize,
        /// How many results the previous reply offered.
        available: usize,
    },
    /// A turn tried to select a result before any search ran.
    NothingToSelect,
    /// An online index mutation (add/remove objects) was rejected — by
    /// the knowledge base (schema violation), the framework (no mutation
    /// support), or the index (bad batch shape).
    Mutation(String),
    /// The engine shed the turn's query under load: the typed admission /
    /// deadline outcome ([`mqa_engine::TicketError`]) names why.
    Shed(mqa_engine::TicketError),
}

impl fmt::Display for MqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqaError::EmptyKnowledgeBase => write!(f, "the knowledge base holds no objects"),
            MqaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MqaError::BuildFailed(msg) => write!(f, "system build failed: {msg}"),
            MqaError::EmptyTurn => {
                write!(
                    f,
                    "the turn carries neither text, nor an image, nor a selection"
                )
            }
            MqaError::BadSelection { index, available } => write!(
                f,
                "selection index {index} out of range: the previous reply had {available} results"
            ),
            MqaError::NothingToSelect => {
                write!(f, "cannot select a result before the first search")
            }
            MqaError::Mutation(msg) => write!(f, "index mutation rejected: {msg}"),
            MqaError::Shed(err) => write!(f, "query shed under load: {err}"),
        }
    }
}

impl std::error::Error for MqaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(MqaError::EmptyKnowledgeBase
            .to_string()
            .contains("no objects"));
        assert!(MqaError::BadSelection {
            index: 7,
            available: 3
        }
        .to_string()
        .contains("7"));
        assert!(MqaError::InvalidConfig("k = 0".into())
            .to_string()
            .contains("k = 0"));
        assert!(MqaError::Shed(mqa_engine::TicketError::Expired)
            .to_string()
            .contains("deadline"));
    }
}
