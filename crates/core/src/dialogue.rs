//! The QA panel (③ in Figure 3): multi-round dialogue sessions.
//!
//! A session scripts the interaction loop of Figures 1 and 4: submit text
//! (and optionally an image), receive ranked multi-modal results plus a
//! conversational reply, *select* a result by clicking it, refine, repeat
//! until satisfied.

use crate::components::{answer::AnswerGenerator, execute::QueryExecutor};
use crate::coordinator::MqaSystem;
use crate::error::MqaError;
use mqa_encoders::ImageData;
use mqa_graph::SearchStats;
use mqa_kb::ObjectId;
use mqa_retrieval::MultiModalQuery;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One user turn: any combination of text, an uploaded image, a click on a
/// previous result, and a weight override.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Turn {
    /// Request text.
    pub text: Option<String>,
    /// Uploaded reference image.
    pub image: Option<ImageData>,
    /// Click on result `select` (0-based rank) of the *previous* reply.
    pub select: Option<usize>,
    /// Negative feedback: result `reject` (0-based rank) of the previous
    /// reply is excluded from this session's future replies.
    pub reject: Option<usize>,
    /// Raw per-modality weight override for this turn.
    pub weights: Option<Vec<f32>>,
    /// Per-turn latency budget in microseconds. When set (and an engine
    /// is attached), the turn's search runs under a [`mqa_engine::Deadline`]
    /// and may be shed with a typed [`MqaError::Shed`] outcome instead of
    /// queueing unboundedly under load.
    pub deadline_us: Option<u64>,
}

impl Turn {
    /// A text-only turn.
    pub fn text(text: impl Into<String>) -> Self {
        Self {
            text: Some(text.into()),
            ..Self::default()
        }
    }

    /// A voice turn (Figure 1's "text or audio form"): the transcript of
    /// the user's spoken request, handled identically to typed text.
    pub fn voice(transcript: impl Into<String>) -> Self {
        Self::text(transcript)
    }

    /// A turn with text and an uploaded image (Figure 4b).
    pub fn text_and_image(text: impl Into<String>, image: ImageData) -> Self {
        Self {
            text: Some(text.into()),
            image: Some(image),
            ..Self::default()
        }
    }

    /// A refinement turn: click result `rank`, then ask for more
    /// (Figure 4a round 2).
    pub fn select_and_text(rank: usize, text: impl Into<String>) -> Self {
        Self {
            text: Some(text.into()),
            select: Some(rank),
            ..Self::default()
        }
    }

    /// A negative-feedback turn: "not this one" on result `rank`, plus a
    /// re-request. The rejected object never reappears in this session.
    pub fn reject_and_text(rank: usize, text: impl Into<String>) -> Self {
        Self {
            text: Some(text.into()),
            reject: Some(rank),
            ..Self::default()
        }
    }

    /// Attaches a weight override.
    pub fn with_weights(mut self, raw: Vec<f32>) -> Self {
        self.weights = Some(raw);
        self
    }

    /// Attaches a per-turn latency budget (microseconds).
    pub fn with_deadline_us(mut self, budget_us: u64) -> Self {
        self.deadline_us = Some(budget_us);
        self
    }
}

/// One retrieved object as shown in the QA panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievedItem {
    /// Knowledge-base object id.
    pub id: ObjectId,
    /// Object title.
    pub title: String,
    /// Caption snippet.
    pub snippet: String,
    /// Framework distance (lower = better).
    pub distance: f32,
}

/// The system's reply to one turn.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Ranked results.
    pub results: Vec<RetrievedItem>,
    /// Conversational summary (absent when no LLM is configured).
    pub message: Option<String>,
    /// Retrieval latency of the turn.
    pub latency: Duration,
    /// Graph-walk counters of the turn's search.
    pub stats: SearchStats,
    /// The dialogue round this reply belongs to (1-based).
    pub round: usize,
}

/// A live dialogue session bound to a built system.
pub struct DialogueSession<'a> {
    system: &'a MqaSystem,
    last_results: Vec<ObjectId>,
    selected: Option<ObjectId>,
    excluded: Vec<ObjectId>,
    history: Vec<String>,
    round: usize,
}

impl<'a> DialogueSession<'a> {
    pub(crate) fn new(system: &'a MqaSystem) -> Self {
        Self {
            system,
            last_results: Vec::new(),
            selected: None,
            excluded: Vec::new(),
            history: Vec::new(),
            round: 0,
        }
    }

    /// The object the user last selected, if any.
    pub fn selected(&self) -> Option<ObjectId> {
        self.selected
    }

    /// Objects the user rejected ("not this one") in this session.
    pub fn excluded(&self) -> &[ObjectId] {
        &self.excluded
    }

    /// Result ids of the previous reply.
    pub fn last_results(&self) -> &[ObjectId] {
        &self.last_results
    }

    /// Completed rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Texts of earlier turns, oldest first.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// Processes one turn: resolve the selection, augment the query with
    /// the selected result's image, search, and generate the reply.
    ///
    /// # Errors
    /// [`MqaError::EmptyTurn`] if the turn carries nothing;
    /// [`MqaError::NothingToSelect`] / [`MqaError::BadSelection`] for
    /// invalid clicks.
    pub fn ask(&mut self, turn: Turn) -> Result<Reply, MqaError> {
        // The turn's trace is declared before the span so it drops last:
        // the closing `core.turn` span records its stage into the trace
        // before the handle finalizes. Turns that error out finalize as
        // canceled (complete() is only reached on the success path).
        let trace = mqa_obs::trace::begin("core.turn");
        let _turn_span = mqa_obs::span("core.turn");
        mqa_obs::counter("core.session.turns").inc();
        // 1. Resolve the clicks (positive select, negative reject).
        if let Some(rank) = turn.select {
            if self.last_results.is_empty() {
                return Err(MqaError::NothingToSelect);
            }
            let id = *self.last_results.get(rank).ok_or(MqaError::BadSelection {
                index: rank,
                available: self.last_results.len(),
            })?;
            self.selected = Some(id);
        }
        if let Some(rank) = turn.reject {
            if self.last_results.is_empty() {
                return Err(MqaError::NothingToSelect);
            }
            let id = *self.last_results.get(rank).ok_or(MqaError::BadSelection {
                index: rank,
                available: self.last_results.len(),
            })?;
            if !self.excluded.contains(&id) {
                self.excluded.push(id);
            }
            if self.selected == Some(id) {
                self.selected = None;
            }
        }
        if turn.text.is_none() && turn.image.is_none() && turn.select.is_none() {
            return Err(MqaError::EmptyTurn);
        }

        // 2. Assemble the query, grafting the selected result's image.
        // With context carry-over on, terse refinements inherit the
        // previous turn's wording.
        let retrieval_text = match (&turn.text, self.history.last()) {
            (Some(t), Some(prev)) if self.system.config().carry_history => {
                Some(format!("{prev} {t}"))
            }
            (t, _) => t.clone(),
        };
        let mut query = MultiModalQuery {
            text: retrieval_text,
            image: turn.image.clone(),
            weight_override: turn.weights.clone(),
        };
        if let Some(sel) = self.selected {
            QueryExecutor::augment_with_selection(&mut query, self.system.corpus().kb(), sel);
        }
        if !query.has_content() {
            // A bare click on a text-only base resolves to nothing to
            // search with.
            return Err(MqaError::EmptyTurn);
        }

        // 3. Search, over-fetching for exclusions and diversification,
        //    then filter and (optionally) MMR-rerank back down to k.
        let k = self.system.executor().k();
        let diversify = self.system.config().diversify;
        let fetch = k + self.excluded.len() + if diversify.is_some() { k } else { 0 };
        let mut out = match turn.deadline_us {
            // A deadline turn can be shed under load — the typed outcome
            // surfaces to the caller instead of queueing past the budget.
            Some(budget_us) => self
                .system
                .executor()
                .run_with_deadline(&query, fetch, budget_us)
                .map_err(MqaError::Shed)?,
            None => self.system.executor().run_with_k(&query, fetch),
        };
        out.results.retain(|c| !self.excluded.contains(&c.id));
        if let Some(lambda) = diversify {
            // Config::validate already rejects lambda outside [0, 1]; this
            // mapping is the last line of defence for hand-built configs.
            out.results = mqa_retrieval::mmr_diversify(
                self.system.corpus().store(),
                self.system.weights(),
                self.system.config().metric,
                &out.results,
                k,
                lambda,
            )
            .map_err(|e| MqaError::InvalidConfig(e.to_string()))?;
        } else {
            out.results.truncate(k);
        }

        // 4. Generate the conversational reply.
        let query_text = turn
            .text
            .clone()
            .unwrap_or_else(|| "(image query)".to_string());
        let entries = AnswerGenerator::context_entries(
            self.system.corpus().kb(),
            &out.results,
            self.selected,
        );
        let gen_span = mqa_obs::span("core.turn.generate");
        let message = self
            .system
            .answerer()
            .generate(&query_text, entries.clone(), &self.history)
            .map(|c| c.text);
        let _ = gen_span.finish();

        // 5. Update the session state.
        self.round += 1;
        self.history.push(query_text);
        self.last_results = out.ids();
        let results = entries
            .into_iter()
            .map(|e| RetrievedItem {
                id: e.id,
                title: e.title,
                snippet: e.snippet,
                distance: e.distance,
            })
            .collect();
        if let Some(t) = &trace {
            t.complete();
        }
        Ok(Reply {
            results,
            message,
            latency: out.latency,
            stats: out.stats,
            round: self.round,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use mqa_kb::{DatasetSpec, GroundTruth};

    fn system() -> MqaSystem {
        let kb = DatasetSpec::weather()
            .objects(120)
            .concepts(6)
            .caption_noise(0.05)
            .seed(3)
            .generate();
        MqaSystem::build(Config::default(), kb).unwrap()
    }

    fn concept_phrase(sys: &MqaSystem, concept: u32) -> String {
        let gt = GroundTruth::build(sys.corpus().kb());
        let member = gt.members(concept)[0];
        let title = sys.corpus().kb().get(member).title.clone();
        title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap()
    }

    #[test]
    fn two_round_refinement_flow() {
        let sys = system();
        let mut session = sys.open_session();
        let phrase = concept_phrase(&sys, 0);
        let r1 = session
            .ask(Turn::text(format!("show me {phrase}")))
            .unwrap();
        assert_eq!(r1.round, 1);
        assert_eq!(r1.results.len(), 5);
        let r2 = session
            .ask(Turn::select_and_text(
                0,
                format!("more {phrase} like this one"),
            ))
            .unwrap();
        assert_eq!(r2.round, 2);
        assert_eq!(session.selected(), Some(r1.results[0].id));
        assert!(session.history().len() == 2);
        // the reply message marks the earlier pick
        assert!(r2.message.unwrap().contains("★"));
    }

    #[test]
    fn select_without_results_errors() {
        let sys = system();
        let mut session = sys.open_session();
        assert_eq!(
            session.ask(Turn::select_and_text(0, "more")).unwrap_err(),
            MqaError::NothingToSelect
        );
    }

    #[test]
    fn out_of_range_selection_errors() {
        let sys = system();
        let mut session = sys.open_session();
        session.ask(Turn::text(concept_phrase(&sys, 1))).unwrap();
        assert_eq!(
            session.ask(Turn::select_and_text(99, "more")).unwrap_err(),
            MqaError::BadSelection {
                index: 99,
                available: 5
            }
        );
    }

    #[test]
    fn empty_turn_errors() {
        let sys = system();
        let mut session = sys.open_session();
        assert_eq!(
            session.ask(Turn::default()).unwrap_err(),
            MqaError::EmptyTurn
        );
    }

    #[test]
    fn bare_click_turn_searches_by_selected_image() {
        let sys = system();
        let mut session = sys.open_session();
        let r1 = session.ask(Turn::text(concept_phrase(&sys, 2))).unwrap();
        let picked = r1.results[1].id;
        // A click alone (no text) searches with the selected image.
        let r2 = session
            .ask(Turn {
                select: Some(1),
                ..Turn::default()
            })
            .unwrap();
        // the picked object itself tops the ranking (identical descriptor)
        assert_eq!(r2.results[0].id, picked);
    }

    #[test]
    fn rejected_results_never_reappear() {
        let sys = system();
        let mut session = sys.open_session();
        let phrase = concept_phrase(&sys, 0);
        let r1 = session
            .ask(Turn::text(format!("show me {phrase}")))
            .unwrap();
        let rejected = r1.results[0].id;
        let r2 = session
            .ask(Turn::reject_and_text(
                0,
                format!("not that one, other {phrase}"),
            ))
            .unwrap();
        assert!(session.excluded().contains(&rejected));
        assert!(
            r2.results.iter().all(|i| i.id != rejected),
            "rejected object returned"
        );
        assert_eq!(r2.results.len(), 5, "result count must not shrink");
        // ...and it stays excluded in later rounds too
        let r3 = session.ask(Turn::text(format!("more {phrase}"))).unwrap();
        assert!(r3.results.iter().all(|i| i.id != rejected));
    }

    #[test]
    fn rejecting_the_selected_object_clears_the_selection() {
        let sys = system();
        let mut session = sys.open_session();
        let phrase = concept_phrase(&sys, 1);
        session.ask(Turn::text(phrase.clone())).unwrap();
        session
            .ask(Turn::select_and_text(0, format!("more {phrase}")))
            .unwrap();
        let picked = session.selected().unwrap();
        // The pick appears in the new results at some rank; reject it there.
        let rank = session.last_results().iter().position(|&id| id == picked);
        if let Some(rank) = rank {
            session
                .ask(Turn::reject_and_text(
                    rank,
                    format!("actually no, {phrase}"),
                ))
                .unwrap();
            assert_eq!(session.selected(), None);
        }
    }

    #[test]
    fn diversification_spreads_results_across_styles() {
        let kb = DatasetSpec::weather()
            .objects(240)
            .concepts(6)
            .styles(4)
            .caption_noise(0.05)
            .image_noise(0.05)
            .seed(8)
            .generate();
        let gt = GroundTruth::build(&kb);
        let styles_of = |sys: &MqaSystem, ids: &[ObjectId]| {
            let mut styles: Vec<u32> = ids
                .iter()
                .map(|&id| sys.corpus().kb().get(id).style.unwrap())
                .collect();
            styles.sort_unstable();
            styles.dedup();
            styles.len()
        };
        // Plain ranking on a near-noiseless corpus returns one tight style
        // cluster; MMR spreads the k slots across styles.
        let plain_sys = MqaSystem::build(
            Config {
                k: 4,
                ..Config::default()
            },
            kb.clone(),
        )
        .unwrap();
        let mmr_sys = MqaSystem::build(
            Config {
                k: 4,
                diversify: Some(0.4),
                ..Config::default()
            },
            kb,
        )
        .unwrap();
        let member = gt.members(2)[0];
        let phrase = concept_phrase(&plain_sys, 2);
        let img = match plain_sys.corpus().kb().get(member).content(1) {
            Some(mqa_encoders::RawContent::Image(i)) => i.clone(),
            _ => unreachable!(),
        };
        let turn = || Turn::text_and_image(phrase.clone(), img.clone());
        let plain = plain_sys.ask_once(turn()).unwrap();
        let diverse = mmr_sys.ask_once(turn()).unwrap();
        let plain_ids: Vec<u32> = plain.results.iter().map(|r| r.id).collect();
        let mmr_ids: Vec<u32> = diverse.results.iter().map(|r| r.id).collect();
        assert!(
            styles_of(&mmr_sys, &mmr_ids) >= styles_of(&plain_sys, &plain_ids),
            "MMR produced no extra style spread: plain {plain_ids:?} vs mmr {mmr_ids:?}"
        );
    }

    #[test]
    fn carry_history_inherits_previous_topic() {
        let kb = DatasetSpec::weather()
            .objects(120)
            .concepts(6)
            .caption_noise(0.05)
            .seed(3)
            .generate();
        let gt = GroundTruth::build(&kb);
        let cfg = Config {
            carry_history: true,
            ..Config::default()
        };
        let sys = MqaSystem::build(cfg, kb).unwrap();
        let mut session = sys.open_session();
        let phrase = concept_phrase(&sys, 0);
        session
            .ask(Turn::text(format!("show me {phrase}")))
            .unwrap();
        // A terse follow-up with no concept words and no click still stays
        // on topic thanks to the carried context.
        let r2 = session.ask(Turn::text("even more of those")).unwrap();
        let hits = r2
            .results
            .iter()
            .filter(|i| gt.is_relevant(i.id, 0))
            .count();
        assert!(hits >= 3, "carried context found only {hits}/5 on-topic");
    }

    #[test]
    fn no_llm_config_gives_results_without_message() {
        let kb = DatasetSpec::weather()
            .objects(60)
            .concepts(6)
            .seed(4)
            .generate();
        let cfg = Config {
            llm: mqa_llm::LlmChoice::None,
            ..Config::default()
        };
        let sys = MqaSystem::build(cfg, kb).unwrap();
        let title = sys.corpus().kb().get(0).title.clone();
        let reply = sys.ask_once(Turn::text(title)).unwrap();
        assert!(reply.message.is_none());
        assert!(!reply.results.is_empty());
    }
}
