//! The coordinator: the system's central nexus.
//!
//! "The coordinator serves as the system's central nexus, supervising all
//! component operations and facilitating smooth data transition across the
//! system. Both the frontend and backend exclusively interact with the
//! coordinator." [`MqaSystem`] is that single reference point: building it
//! runs the three build-time components as an `mqa-dag` pipeline, and every
//! frontend surface (config import/export, status panel, dialogue sessions)
//! goes through it.

use crate::components::{answer, execute, index, preprocess, represent};
use crate::config::Config;
use crate::dialogue::{DialogueSession, Reply, Turn};
use crate::error::MqaError;
use crate::status::{Milestone, StatusMonitor};
use mqa_cache::{Fingerprint, ResultCache};
use mqa_dag::{Context, Pipeline};
use mqa_retrieval::{EncodedCorpus, RetrievalFramework, RetrievalOutput};
use mqa_vector::Weights;
use std::sync::Arc;
use std::sync::Mutex;

/// The built MQA system.
pub struct MqaSystem {
    config: Config,
    corpus: Arc<EncodedCorpus>,
    weights: Weights,
    framework: Arc<dyn RetrievalFramework>,
    executor: execute::QueryExecutor,
    answerer: answer::AnswerGenerator,
    status: StatusMonitor,
    engine_options: Option<mqa_engine::EngineOptions>,
    result_cache: Option<Arc<ResultCache<RetrievalOutput>>>,
}

impl MqaSystem {
    /// Validates `config`, then runs Data Preprocessing → Vector
    /// Representation → Index Construction as a DAG pipeline and wires the
    /// query-time components.
    ///
    /// # Errors
    /// Configuration errors ([`MqaError::InvalidConfig`]), an empty base
    /// ([`MqaError::EmptyKnowledgeBase`]), or a failed build stage
    /// ([`MqaError::BuildFailed`]).
    pub fn build(config: Config, kb: mqa_kb::KnowledgeBase) -> Result<Self, MqaError> {
        let _build_span = mqa_obs::span("core.build");
        config.validate()?;
        let cfg = Arc::new(config);
        let kb_slot = Arc::new(Mutex::new(Some(kb)));

        let mut ctx = Context::new();
        let (c1, c2) = (Arc::clone(&cfg), Arc::clone(&cfg));
        let kb_for_stage = Arc::clone(&kb_slot);
        let trace = Pipeline::new()
            .stage("data_preprocessing", move |_| {
                let kb = kb_for_stage
                    .lock()
                    .map_err(|_| "knowledge base lock poisoned".to_string())?
                    .take()
                    .ok_or_else(|| "knowledge base already consumed".to_string())?;
                let pre = preprocess::run(kb).map_err(|e| e.to_string())?;
                Ok(vec![("pre".to_string(), Box::new(pre) as _)])
            })
            .stage("vector_representation", move |c| {
                let pre = c
                    .get::<preprocess::Preprocessed>("pre")
                    .map_err(|e| e.to_string())?;
                let rep = represent::run(pre, &c1).map_err(|e| e.to_string())?;
                Ok(vec![("rep".to_string(), Box::new(rep) as _)])
            })
            .stage("index_construction", move |c| {
                let rep = c
                    .get::<represent::Represented>("rep")
                    .map_err(|e| e.to_string())?;
                let built = index::run(rep, &c2).map_err(|e| e.to_string())?;
                Ok(vec![("built".to_string(), Box::new(built) as _)])
            })
            .run(&mut ctx)
            .map_err(|e| match e {
                // Surface the inner component error verbatim.
                mqa_dag::DagError::TaskFailed { task, message } => {
                    if message.contains("no objects") {
                        MqaError::EmptyKnowledgeBase
                    } else {
                        MqaError::BuildFailed(format!("{task}: {message}"))
                    }
                }
                other => MqaError::BuildFailed(other.to_string()),
            })?;

        let pre: preprocess::Preprocessed = ctx
            .take("pre")
            .map_err(|e| MqaError::BuildFailed(e.to_string()))?;
        let rep: represent::Represented = ctx
            .take("rep")
            .map_err(|e| MqaError::BuildFailed(e.to_string()))?;
        let built: index::BuiltFramework = ctx
            .take("built")
            .map_err(|e| MqaError::BuildFailed(e.to_string()))?;

        // Assemble the status panel from component outputs + true timings.
        let mut status = StatusMonitor::new();
        status.detail(
            Milestone::DataPreprocessing,
            format!(
                "knowledge base `{}`: {} objects, {} modalities ({} partial)",
                pre.kb.name(),
                pre.object_count,
                pre.modality_count,
                pre.partial_objects
            ),
        );
        status.detail(Milestone::DataPreprocessing, pre.stats.summary());
        let choices: Vec<String> = rep
            .corpus
            .encoders()
            .choices()
            .iter()
            .map(|c| format!("{} ({}d)", c.display_name(), c.dim()))
            .collect();
        status.detail(
            Milestone::VectorRepresentation,
            format!("encoders: {}", choices.join(" + ")),
        );
        status.detail(
            Milestone::VectorRepresentation,
            format!(
                "total vector dim: {}",
                rep.corpus.store().schema().total_dim()
            ),
        );
        status.detail(Milestone::VectorRepresentation, rep.weight_note.clone());
        status.detail(Milestone::IndexConstruction, built.description.clone());
        for timing in &trace.tasks {
            let milestone = match timing.name.as_str() {
                "data_preprocessing" => Milestone::DataPreprocessing,
                "vector_representation" => Milestone::VectorRepresentation,
                "index_construction" => Milestone::IndexConstruction,
                _ => continue,
            };
            status.complete(milestone, timing.elapsed);
        }

        let executor = execute::QueryExecutor::new(Arc::clone(&built.framework), cfg.k, cfg.ef);
        let answerer = answer::AnswerGenerator::from_choice(&cfg.llm, cfg.temperature);
        status.detail(
            Milestone::QueryExecution,
            format!(
                "framework: {} (k={}, ef={})",
                cfg.framework.name(),
                cfg.k,
                cfg.ef
            ),
        );
        status.complete(Milestone::QueryExecution, std::time::Duration::ZERO);
        status.detail(
            Milestone::AnswerGeneration,
            format!(
                "llm: {} (temperature {})",
                answerer.model_name(),
                cfg.temperature
            ),
        );
        status.complete(Milestone::AnswerGeneration, std::time::Duration::ZERO);

        Ok(Self {
            config: Arc::try_unwrap(cfg).unwrap_or_else(|a| a.as_ref().clone()),
            corpus: Arc::clone(&rep.corpus),
            weights: rep.weights.clone(),
            framework: built.framework,
            executor,
            answerer,
            status,
            engine_options: None,
            result_cache: None,
        })
    }

    /// Opens a multi-round dialogue session (the QA panel, ③ in Figure 3).
    pub fn open_session(&self) -> DialogueSession<'_> {
        DialogueSession::new(self)
    }

    /// One-shot question answering without session state.
    ///
    /// # Errors
    /// Propagates dialogue errors (e.g. [`MqaError::EmptyTurn`]).
    pub fn ask_once(&self, turn: Turn) -> Result<Reply, MqaError> {
        self.open_session().ask(turn)
    }

    /// The live status panel.
    pub fn status(&self) -> &StatusMonitor {
        &self.status
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The encoded corpus.
    pub fn corpus(&self) -> &Arc<EncodedCorpus> {
        &self.corpus
    }

    /// The modality weights in force.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The retrieval framework.
    pub fn framework(&self) -> &Arc<dyn RetrievalFramework> {
        &self.framework
    }

    /// Spawns a concurrent [`mqa_engine::QueryEngine`] over the framework
    /// and routes every subsequent turn through its worker pool. Answers
    /// are identical to the serial path; only the thread doing the search
    /// changes. Returns the engine for direct (batch) submission.
    pub fn enable_engine(
        &mut self,
        options: mqa_engine::EngineOptions,
    ) -> Arc<mqa_engine::QueryEngine> {
        let engine = Arc::new(mqa_engine::QueryEngine::new(
            Arc::clone(&self.framework),
            options,
        ));
        self.executor.set_engine(Arc::clone(&engine));
        self.engine_options = Some(options);
        engine
    }

    /// The engine turns are routed through, if [`MqaSystem::enable_engine`]
    /// was called.
    pub fn engine(&self) -> Option<&Arc<mqa_engine::QueryEngine>> {
        self.executor.engine()
    }

    /// Fingerprints everything cached answers depend on besides the query
    /// itself: the full configuration and the weights in force.
    fn context_fingerprint(&self) -> u64 {
        Fingerprint::new()
            .str(&self.config.to_json())
            .f32_slice(self.weights.as_slice())
            .finish()
    }

    /// Attaches a turn-level result cache of `capacity` entries: repeated
    /// turns (same query content, weights, and result-set parameters) are
    /// answered from the cache without touching the framework or engine.
    /// The cache is invalidated automatically when the context changes
    /// (see [`MqaSystem::relearn_weights`]). Returns the cache for metric
    /// inspection; calling again replaces the cache.
    pub fn enable_result_cache(&mut self, capacity: usize) -> Arc<ResultCache<RetrievalOutput>> {
        let cache = Arc::new(ResultCache::new(capacity));
        self.executor
            .set_cache(Arc::clone(&cache), self.context_fingerprint());
        self.result_cache = Some(Arc::clone(&cache));
        cache
    }

    /// The turn-level result cache, if [`MqaSystem::enable_result_cache`]
    /// was called.
    pub fn result_cache(&self) -> Option<&Arc<ResultCache<RetrievalOutput>>> {
        self.result_cache.as_ref()
    }

    /// Re-learns the modality weights with `trainer`, rebuilds the
    /// framework (and engine, when one is enabled) over the same corpus,
    /// and invalidates the result cache — cached answers were computed
    /// under the old weights and must not survive the change.
    ///
    /// # Errors
    /// [`MqaError::InvalidConfig`] when the corpus is unlabelled (weight
    /// learning needs concept labels); build errors propagate from index
    /// construction.
    pub fn relearn_weights(&mut self, trainer: mqa_weights::TrainerConfig) -> Result<(), MqaError> {
        let _span = mqa_obs::span("core.relearn_weights");
        let labels = self.corpus.concept_labels().ok_or_else(|| {
            MqaError::InvalidConfig(
                "weight re-learning requires a corpus with concept labels".to_string(),
            )
        })?;
        let out = mqa_weights::WeightLearner::new(trainer).learn(self.corpus.store(), &labels);
        self.weights = out.weights.clone();
        self.config.trainer = trainer;
        let note = format!(
            "re-learned weights {:?} (triplet accuracy {:.2})",
            out.weights
                .as_slice()
                .iter()
                .map(|w| (w * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            out.triplet_accuracy
        );
        let rep = represent::Represented {
            corpus: Arc::clone(&self.corpus),
            weights: self.weights.clone(),
            learned: Some(out),
            weight_note: note.clone(),
        };
        let built = index::run(&rep, &self.config)?;
        self.framework = Arc::clone(&built.framework);
        self.executor.set_framework(built.framework);
        if let Some(options) = self.engine_options {
            let engine = Arc::new(mqa_engine::QueryEngine::new(
                Arc::clone(&self.framework),
                options,
            ));
            self.executor.set_engine(engine);
        }
        if let Some(cache) = &self.result_cache {
            cache.invalidate_all();
            self.executor
                .set_cache(Arc::clone(cache), self.context_fingerprint());
        }
        self.status.detail(Milestone::VectorRepresentation, note);
        Ok(())
    }

    /// Adds objects to the live system without a rebuild: each record is
    /// validated against the knowledge-base schema, re-encoded through the
    /// corpus's encoder set, and inserted into the framework's index,
    /// which publishes a new snapshot while concurrent queries (including
    /// engine workers mid-drain) keep reading the generation they pinned.
    /// The result cache is invalidated — cached answers predate the new
    /// objects.
    ///
    /// # Errors
    /// [`MqaError::Mutation`] when the knowledge base rejects a record,
    /// the framework does not support mutation (only MUST does), or the
    /// index rejects the batch; nothing is modified on error.
    pub fn add_objects(
        &mut self,
        records: &[mqa_kb::ObjectRecord],
    ) -> Result<mqa_graph::MutationReport, MqaError> {
        let _span = mqa_obs::span("core.mutate.add");
        let grown = self
            .corpus
            .with_records(records)
            .map_err(|(i, e)| MqaError::Mutation(format!("record {i}: {e}")))?;
        let encoded: Vec<mqa_vector::MultiVector> = records
            .iter()
            .map(|r| self.corpus.encoders().encode_record(r))
            .collect();
        let report = self
            .framework
            .add_objects(&encoded)
            .map_err(|e| MqaError::Mutation(e.to_string()))?;
        self.corpus = Arc::new(grown);
        self.note_mutation(&format!(
            "added {} objects (epoch {}, {} live)",
            report.applied, report.epoch, report.live
        ));
        Ok(report)
    }

    /// Removes objects from the live system: their index entries are
    /// tombstoned (never surfacing in results again, with graph compaction
    /// once enough deletes accumulate) and the result cache is
    /// invalidated. Knowledge-base records are retained so ids stay dense
    /// and earlier replies keep resolving.
    ///
    /// # Errors
    /// [`MqaError::Mutation`] when the framework does not support
    /// mutation or an id is out of range; nothing is modified on error.
    pub fn remove_objects(
        &mut self,
        ids: &[mqa_vector::VecId],
    ) -> Result<mqa_graph::MutationReport, MqaError> {
        let _span = mqa_obs::span("core.mutate.remove");
        let report = self
            .framework
            .remove_objects(ids)
            .map_err(|e| MqaError::Mutation(e.to_string()))?;
        self.note_mutation(&format!(
            "removed {} objects (epoch {}, {} live{})",
            report.applied,
            report.epoch,
            report.live,
            if report.compacted { ", compacted" } else { "" }
        ));
        Ok(report)
    }

    /// Post-mutation bookkeeping shared by add and remove: one result-cache
    /// generation bump per mutation batch, plus a status-panel note.
    fn note_mutation(&mut self, note: &str) {
        if let Some(cache) = &self.result_cache {
            cache.invalidate_all();
        }
        self.status
            .detail(Milestone::IndexConstruction, note.to_string());
    }

    pub(crate) fn executor(&self) -> &execute::QueryExecutor {
        &self.executor
    }

    pub(crate) fn answerer(&self) -> &answer::AnswerGenerator {
        &self.answerer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqa_kb::DatasetSpec;

    fn kb() -> mqa_kb::KnowledgeBase {
        DatasetSpec::weather()
            .objects(80)
            .concepts(8)
            .seed(1)
            .generate()
    }

    #[test]
    fn build_completes_and_ticks_milestones() {
        let sys = MqaSystem::build(Config::default(), kb()).unwrap();
        for m in Milestone::ALL {
            assert!(sys.status().is_done(m), "{m:?} not ticked");
        }
        let panel = sys.status().render();
        assert!(panel.contains("knowledge base `weather`"));
        assert!(panel.contains("encoders:"));
    }

    #[test]
    fn invalid_config_rejected_before_any_work() {
        let cfg = Config {
            k: 0,
            ..Config::default()
        };
        assert!(matches!(
            MqaSystem::build(cfg, kb()),
            Err(MqaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_base_surfaces_typed_error() {
        let empty = mqa_kb::KnowledgeBase::new("empty", mqa_kb::ContentSchema::caption_image(64));
        let err = match MqaSystem::build(Config::default(), empty) {
            Err(e) => e,
            Ok(_) => panic!("empty base must fail"),
        };
        assert_eq!(err, MqaError::EmptyKnowledgeBase);
    }

    #[test]
    fn component_failure_surfaces_as_build_failed_with_stage_name() {
        // Wrong encoder-choice count fails inside Vector Representation.
        let cfg = Config {
            encoders: Some(vec![mqa_encoders::EncoderChoice::HashingText { dim: 8 }]),
            ..Config::default()
        };
        let err = match MqaSystem::build(cfg, kb()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched encoder count must fail"),
        };
        match err {
            MqaError::BuildFailed(msg) => {
                assert!(msg.contains("vector_representation"), "{msg}");
            }
            other => panic!("expected BuildFailed, got {other:?}"),
        }
    }

    #[test]
    fn ask_once_returns_results_and_message() {
        let sys = MqaSystem::build(Config::default(), kb()).unwrap();
        let title = sys.corpus().kb().get(0).title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        let reply = sys.ask_once(Turn::text(phrase)).unwrap();
        assert_eq!(reply.results.len(), sys.config().k);
        assert!(reply.message.is_some());
    }

    #[test]
    fn weights_are_learned_by_default() {
        let sys = MqaSystem::build(Config::default(), kb()).unwrap();
        assert_eq!(sys.weights().arity(), 2);
    }

    #[test]
    fn result_cache_serves_repeated_turns() {
        let mut sys = MqaSystem::build(Config::default(), kb()).unwrap();
        let title = sys.corpus().kb().get(0).title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        let cold = sys.ask_once(Turn::text(phrase.clone())).unwrap();
        let cache = sys.enable_result_cache(64);
        assert_eq!(cache.len(), 0);
        let miss = sys.ask_once(Turn::text(phrase.clone())).unwrap();
        let hit = sys.ask_once(Turn::text(phrase)).unwrap();
        let ids = |r: &Reply| r.results.iter().map(|x| x.id).collect::<Vec<_>>();
        assert_eq!(ids(&cold), ids(&miss));
        assert_eq!(ids(&miss), ids(&hit));
        assert_eq!(cache.len(), 1, "one distinct turn cached");
        // A different turn is a different key.
        let other_title = sys.corpus().kb().get(1).title.clone();
        let other = other_title
            .rsplit_once(" #")
            .map(|(p, _)| p.to_string())
            .unwrap();
        sys.ask_once(Turn::text(other)).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn relearn_invalidates_cache_and_keeps_answers_consistent() {
        let mut sys = MqaSystem::build(Config::default(), kb()).unwrap();
        let cache = sys.enable_result_cache(64);
        let title = sys.corpus().kb().get(0).title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        sys.ask_once(Turn::text(phrase.clone())).unwrap();
        let gen_before = cache.generation();
        sys.relearn_weights(mqa_weights::TrainerConfig {
            epochs: 3,
            ..sys.config().trainer
        })
        .unwrap();
        assert!(
            cache.generation() > gen_before,
            "relearn must invalidate the result cache"
        );
        // Post-relearn turns answer from the rebuilt framework and match a
        // freshly built system with the same trainer.
        let after = sys.ask_once(Turn::text(phrase.clone())).unwrap();
        let fresh_cfg = Config {
            trainer: sys.config().trainer,
            ..Config::default()
        };
        let fresh = MqaSystem::build(fresh_cfg, kb()).unwrap();
        let expect = fresh.ask_once(Turn::text(phrase)).unwrap();
        let ids = |r: &Reply| r.results.iter().map(|x| x.id).collect::<Vec<_>>();
        assert_eq!(ids(&after), ids(&expect));
    }

    #[test]
    fn relearn_on_unlabelled_corpus_is_typed_error() {
        use mqa_encoders::RawContent;
        use mqa_kb::{ContentSchema, FieldSpec, KnowledgeBase, ObjectRecord};
        use mqa_vector::ModalityKind;
        let mut unlabelled = KnowledgeBase::new(
            "texts",
            ContentSchema::new(
                vec![FieldSpec {
                    name: "body".into(),
                    kind: ModalityKind::Text,
                }],
                0,
            ),
        );
        for i in 0..8 {
            unlabelled
                .ingest(ObjectRecord::new(
                    format!("t{i}"),
                    vec![Some(RawContent::text(format!("object number {i}")))],
                ))
                .unwrap();
        }
        let mut sys = MqaSystem::build(Config::default(), unlabelled).unwrap();
        assert!(matches!(
            sys.relearn_weights(mqa_weights::TrainerConfig::default()),
            Err(MqaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn add_objects_extends_kb_and_answers_from_new_objects() {
        let mut sys = MqaSystem::build(Config::default(), kb()).unwrap();
        let cache = sys.enable_result_cache(64);
        let gen_before = cache.generation();
        // Re-ingest a copy of object 0, then retire the original: the
        // copy (id 80) must take over its answers.
        let record = sys.corpus().kb().get(0).clone();
        let report = sys.add_objects(std::slice::from_ref(&record)).unwrap();
        assert_eq!((report.epoch, report.applied), (1, 1));
        assert_eq!(sys.corpus().kb().len(), 81);
        assert!(
            cache.generation() > gen_before,
            "each mutation batch must bump the result-cache generation"
        );
        let gen_mid = cache.generation();
        sys.remove_objects(&[0]).unwrap();
        assert!(cache.generation() > gen_mid);
        let title = sys.corpus().kb().get(0).title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        let reply = sys.ask_once(Turn::text(phrase)).unwrap();
        let ids: Vec<u32> = reply.results.iter().map(|x| x.id).collect();
        assert!(!ids.contains(&0), "retired object surfaced: {ids:?}");
        assert!(ids.contains(&80), "replacement object missing: {ids:?}");
        // The status panel records both batches.
        let panel = sys.status().render();
        assert!(panel.contains("added 1 objects"), "{panel}");
        assert!(panel.contains("removed 1 objects"), "{panel}");
    }

    #[test]
    fn mutation_rejections_are_typed_and_modify_nothing() {
        let mut sys = MqaSystem::build(Config::default(), kb()).unwrap();
        // A schema-violating record is rejected by the knowledge base.
        let bad = mqa_kb::ObjectRecord::new("bad".to_string(), vec![None, None]);
        let err = match sys.add_objects(&[bad]) {
            Err(e) => e,
            Ok(_) => panic!("empty record must be rejected"),
        };
        assert!(matches!(err, MqaError::Mutation(_)));
        assert_eq!(sys.corpus().kb().len(), 80, "rejected batch must not land");
        // An out-of-range delete is rejected by the index.
        assert!(matches!(
            sys.remove_objects(&[80]),
            Err(MqaError::Mutation(_))
        ));
        // A non-MUST framework refuses mutation outright.
        let cfg = Config {
            framework: mqa_retrieval::FrameworkKind::Je,
            ..Config::default()
        };
        let mut je = MqaSystem::build(cfg, kb()).unwrap();
        let record = je.corpus().kb().get(0).clone();
        let err = match je.add_objects(std::slice::from_ref(&record)) {
            Err(e) => e,
            Ok(_) => panic!("JE must refuse mutation"),
        };
        match err {
            MqaError::Mutation(msg) => assert!(msg.contains("JE"), "{msg}"),
            other => panic!("expected Mutation, got {other:?}"),
        }
        assert_eq!(je.corpus().kb().len(), 80, "refused batch must not land");
    }

    #[test]
    fn engine_turns_match_serial_turns() {
        let mut sys = MqaSystem::build(Config::default(), kb()).unwrap();
        let title = sys.corpus().kb().get(0).title.clone();
        let phrase = title.rsplit_once(" #").map(|(p, _)| p.to_string()).unwrap();
        let serial = sys.ask_once(Turn::text(phrase.clone())).unwrap();
        assert!(sys.engine().is_none());
        let engine = sys.enable_engine(mqa_engine::EngineOptions::with_workers(2));
        assert_eq!(engine.workers(), 2);
        assert!(sys.engine().is_some());
        let concurrent = sys.ask_once(Turn::text(phrase)).unwrap();
        let ids = |r: &Reply| r.results.iter().map(|x| x.id).collect::<Vec<_>>();
        assert_eq!(ids(&serial), ids(&concurrent));
    }
}
