//! Mutation tests for the panic-freedom flow gate.
//!
//! The unit tests in `flow.rs` cover the scanner and resolver on toy
//! sources; these tests prove the gate works on the *real* workspace:
//! reintroducing a reachable `unwrap` flips the analysis red, while the
//! same mutation in unreachable (dead) code stays green. Together they
//! pin both directions — the gate catches regressions on the serving
//! path and does not cry wolf off it.

use mqa_xtask::baseline::Baseline;
use mqa_xtask::flow;

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the workspace root")
        .to_path_buf()
}

/// The checked-in tree must be clean under the checked-in baseline —
/// the same invariant CI enforces, runnable locally via `cargo test`.
#[test]
fn workspace_cone_is_clean_under_baseline() {
    let root = repo_root();
    let baseline_path = root.join("flow-baseline.toml");
    let baseline = Baseline::load(&baseline_path).expect("flow-baseline.toml parses");
    let outcome = flow::run(&root, &baseline).expect("flow analysis runs");
    assert!(
        outcome.is_clean(),
        "flow gate dirty: findings={:?} unused={:?}",
        outcome.findings,
        outcome.unused_waivers
    );
    assert!(outcome.stats.entry_fns > 0, "no entry points recognized");
}

/// Injecting `.unwrap()` into a function on the serving path must
/// produce a new reachable-panic finding (the gate goes red).
#[test]
fn reintroduced_reachable_unwrap_flips_the_gate_red() {
    let root = repo_root();
    let mut files = flow::load_workspace_sources(&root).expect("workspace sources load");

    let before = flow::analyze_sources(&files);

    // Mutate MustFramework::search_scratch — every QueryEngine::submit
    // traversal passes through it.
    let target = files
        .iter_mut()
        .find(|(rel, _)| rel == "crates/retrieval/src/must.rs")
        .expect("must.rs present");
    let marker = "assert!(k > 0, \"k must be >= 1\");";
    assert!(target.1.contains(marker), "mutation anchor moved");
    target.1 = target.1.replace(
        marker,
        "assert!(k > 0, \"k must be >= 1\");\n        let _mutant: Option<u32> = None; let _ = _mutant.unwrap();",
    );

    let after = flow::analyze_sources(&files);
    let new_unwraps: Vec<_> = after
        .findings
        .iter()
        .filter(|f| {
            f.file == "crates/retrieval/src/must.rs"
                && f.excerpt.contains("[unwrap in ")
                && !before
                    .findings
                    .iter()
                    .any(|b| b.file == f.file && b.excerpt == f.excerpt)
        })
        .collect();
    assert_eq!(
        new_unwraps.len(),
        1,
        "reachable unwrap not caught: {:?}",
        after
            .findings
            .iter()
            .filter(|f| f.file.ends_with("must.rs"))
            .collect::<Vec<_>>()
    );
    assert!(
        new_unwraps[0]
            .excerpt
            .contains("MustFramework::search_scratch"),
        "finding not attributed to the mutated fn: {}",
        new_unwraps[0].excerpt
    );
}

/// Control: the same `.unwrap()` in a function no entry point reaches
/// must NOT appear in the cone (the gate stays green).
#[test]
fn unreachable_unwrap_control_stays_green() {
    let root = repo_root();
    let mut files = flow::load_workspace_sources(&root).expect("workspace sources load");

    let before = flow::analyze_sources(&files);

    // A free function nothing calls, appended at the end of a serving
    // crate file: inventoried, but outside every entry point's cone.
    let target = files
        .iter_mut()
        .find(|(rel, _)| rel == "crates/retrieval/src/must.rs")
        .expect("must.rs present");
    target.1.push_str(
        "\npub fn flow_fixture_dead_code_probe() -> u32 {\n    let x: Option<u32> = None;\n    x.unwrap()\n}\n",
    );

    let after = flow::analyze_sources(&files);
    assert_eq!(
        before.findings.len(),
        after.findings.len(),
        "dead-code unwrap leaked into the cone: {:?}",
        after
            .findings
            .iter()
            .filter(|f| f.excerpt.contains("dead_code_probe"))
            .collect::<Vec<_>>()
    );
}
