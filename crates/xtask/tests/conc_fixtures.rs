//! Fixture-driven tests for the static concurrency analysis.
//!
//! `fixture_conc.rs` seeds one instance of each conc rule at a pinned
//! line; these tests assert the exact `file:line` coordinates, then
//! exercise the full `conc::run` gate over a throwaway tree to prove a
//! lock-order mutation actually flips the gate red and that the waiver
//! baseline machinery carries over.

use mqa_xtask::baseline::Baseline;
use mqa_xtask::conc;
use mqa_xtask::lint::Rule;

fn fixture() -> conc::Analysis {
    let src = include_str!("fixtures/fixture_conc.rs");
    conc::analyze_sources(&[("crates/x/src/fixture_conc.rs".to_string(), src.to_string())])
}

#[test]
fn lock_inversion_reports_both_edges_at_pinned_lines() {
    let a = fixture();
    let cycles: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::LockOrderCycle)
        .collect();
    assert_eq!(cycles.len(), 2, "findings: {:?}", a.findings);
    assert_eq!(
        (cycles[0].file.as_str(), cycles[0].line),
        ("crates/x/src/fixture_conc.rs", 19)
    );
    assert_eq!(
        (cycles[1].file.as_str(), cycles[1].line),
        ("crates/x/src/fixture_conc.rs", 26)
    );
    // Each finding names both locks and the site where the held lock was
    // taken, so the report alone locates the inversion.
    assert!(cycles[0].excerpt.contains("Pair.alpha"));
    assert!(cycles[0].excerpt.contains("Pair.beta"));
    assert!(cycles[0].excerpt.contains(":18"));
}

#[test]
fn if_guarded_condvar_wait_fires_at_pinned_line() {
    let a = fixture();
    let waits: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::CondvarNoLoop)
        .collect();
    assert_eq!(waits.len(), 1, "findings: {:?}", a.findings);
    assert_eq!(waits[0].line, 34);
}

#[test]
fn guard_across_join_fires_at_pinned_line() {
    let a = fixture();
    let held: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::GuardAcrossBlocking)
        .collect();
    assert_eq!(held.len(), 1, "findings: {:?}", a.findings);
    assert_eq!(held[0].line, 41);
    assert!(held[0].excerpt.contains("`g`"));
}

#[test]
fn fixture_defect_census_is_exactly_four() {
    // Exactly the seeded defects — no phantom findings from the clean
    // parts of the fixture (the drops, the struct, the doc comment).
    let a = fixture();
    assert_eq!(a.findings.len(), 4, "findings: {:?}", a.findings);
}

/// A `BoundedQueue`-shaped module whose two public entry points take the
/// same two locks in the same order — the shape the real workspace has.
const QUEUE_LIKE_OK: &str = r#"
use std::sync::Mutex;

pub struct Queue {
    state: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Queue {
    pub fn push(&self, v: u32) {
        let mut s = self.state.lock();
        let mut n = self.stats.lock();
        s.push(v);
        *n += 1;
        drop(n);
        drop(s);
    }

    pub fn pop(&self) -> Option<u32> {
        let mut s = self.state.lock();
        let mut n = self.stats.lock();
        *n += 1;
        drop(n);
        let v = s.pop();
        drop(s);
        v
    }
}
"#;

/// The same module with `pop` mutated to take the locks in the reverse
/// order — the regression the gate exists to catch.
const QUEUE_LIKE_MUTATED: &str = r#"
use std::sync::Mutex;

pub struct Queue {
    state: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Queue {
    pub fn push(&self, v: u32) {
        let mut s = self.state.lock();
        let mut n = self.stats.lock();
        s.push(v);
        *n += 1;
        drop(n);
        drop(s);
    }

    pub fn pop(&self) -> Option<u32> {
        let mut n = self.stats.lock();
        let mut s = self.state.lock();
        *n += 1;
        drop(n);
        let v = s.pop();
        drop(s);
        v
    }
}
"#;

/// End-to-end `conc::run` over a throwaway tree: the consistent-order
/// tree passes, swapping one function's acquisition order flips the gate
/// red, and the waiver/stale-waiver machinery behaves like lint's.
#[test]
fn lock_order_mutation_flips_the_gate_red() {
    let root = std::env::temp_dir().join(format!("mqa-xtask-conc-fixture-{}", std::process::id()));
    let src_dir = root.join("src");
    std::fs::create_dir_all(&src_dir).unwrap();

    std::fs::write(src_dir.join("queue_like.rs"), QUEUE_LIKE_OK).unwrap();
    let outcome = conc::run(&root, &Baseline::empty()).unwrap();
    assert!(
        outcome.is_clean(),
        "clean tree flagged: {:?}",
        outcome.findings
    );
    assert!(
        !outcome.analysis.edges.is_empty(),
        "the consistent order must still appear as graph edges"
    );

    std::fs::write(src_dir.join("queue_like.rs"), QUEUE_LIKE_MUTATED).unwrap();
    let outcome = conc::run(&root, &Baseline::empty()).unwrap();
    assert!(!outcome.is_clean(), "mutated tree must fail the gate");
    assert!(
        outcome
            .findings
            .iter()
            .all(|f| f.rule == Rule::LockOrderCycle),
        "findings: {:?}",
        outcome.findings
    );
    assert!(!outcome.findings.is_empty());

    // A matching waiver suppresses the finding; a stale one fails again.
    let waived = Baseline::parse(
        r#"
[[waiver]]
file = "src/queue_like.rs"
rule = "lock-order-cycle"
reason = "fixture exercise"
"#,
    )
    .unwrap();
    let outcome = conc::run(&root, &waived).unwrap();
    assert!(outcome.is_clean());
    assert!(!outcome.waived.is_empty());

    std::fs::write(src_dir.join("queue_like.rs"), QUEUE_LIKE_OK).unwrap();
    let outcome = conc::run(&root, &waived).unwrap();
    assert!(!outcome.is_clean(), "stale waiver must fail the gate");
    assert_eq!(outcome.unused_waivers.len(), 1);

    std::fs::remove_dir_all(&root).ok();
}

/// The real workspace must be clean with an empty baseline: zero conc
/// findings and zero waivers is an acceptance criterion of the suite.
#[test]
fn workspace_is_clean_with_zero_waivers() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = conc::run(&root, &Baseline::empty()).unwrap();
    assert!(
        outcome.findings.is_empty(),
        "workspace conc findings: {:#?}",
        outcome.findings
    );
    // The engine's two traced locks must be in the inventory the runtime
    // witness is validated against.
    assert!(outcome.analysis.traced_names.contains("engine.queue.state"));
    assert!(outcome.analysis.traced_names.contains("engine.ticket.slot"));
}
