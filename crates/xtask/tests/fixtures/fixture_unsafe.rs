//! Lint fixture: one undocumented `unsafe` block, on line 9.

pub fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid (fixture decoy).
    unsafe { *p }
}

pub fn bad(p: *const u32) -> u32 {
    unsafe { *p }
}
