//! Fixture: arithmetic-safety lints (`no-index-panic`, `no-lossy-cast`,
//! `no-raw-div`). One violation of each rule at a pinned line; everything
//! else is a decoy that must NOT fire (INVARIANT-discharged indexing,
//! literal divisors, float division, widening casts, `#[cfg(test)]`).

pub fn index_site(v: &[f32], i: usize) -> f32 {
    v[i]
}

pub fn invariant_site(v: &[f32], i: usize) -> f32 {
    // INVARIANT: callers clamp i to v.len() - 1.
    v[i]
}

pub fn lossy_site(x: usize) -> u8 {
    x as u8
}

pub fn widening_is_fine(x: u8) -> u64 {
    x as u64
}

pub fn fitting_literal_is_fine() -> u8 {
    200usize as u8
}

pub fn raw_div_site(a: u32, b: u32) -> u32 {
    a / b
}

pub fn literal_divisor_is_fine(a: u32) -> u32 {
    a / 4
}

pub fn float_division_is_fine(fx: f32, fy: f32) -> f32 {
    fx / fy
}

#[cfg(test)]
mod tests {
    pub fn test_code_is_masked(v: &[u32], i: usize) -> u32 {
        v[i] % (i as u32)
    }
}
