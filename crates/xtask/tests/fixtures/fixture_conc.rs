//! Conc-analysis fixture: three seeded concurrency defects at pinned
//! lines — an AB/BA lock-order inversion, an `if`-guarded Condvar wait,
//! and a guard held across a blocking `join()`. The source walker skips
//! `fixtures` directories, so this file never reaches the real gate; the
//! tests feed it to `conc::analyze_sources` directly and assert the
//! exact `file:line` of every finding.

use std::sync::{Condvar, Mutex};

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
    pub ready: Condvar,
}

impl Pair {
    pub fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock(); // cycle edge: beta while holding alpha (line 19)
        drop(b);
        drop(a);
    }

    pub fn ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock(); // cycle edge: alpha while holding beta (line 26)
        drop(a);
        drop(b);
    }

    pub fn if_guarded_wait(&self) {
        let mut g = self.alpha.lock();
        if *g == 0 {
            g = self.ready.wait(g); // condvar-no-loop (line 34)
        }
        drop(g);
    }

    pub fn guard_across_join(&self, h: std::thread::JoinHandle<()>) {
        let g = self.beta.lock();
        let _ = h.join(); // guard-across-blocking (line 41)
        drop(g);
    }
}
