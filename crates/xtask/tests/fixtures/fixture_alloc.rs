//! Fixture: allocation sites at pinned lines, plus decoys that must
//! NOT fire — prose mentions, string literals, `#[cfg(test)]` code,
//! `// ALLOC:`-discharged sites, and refcount (`Arc`) handle clones.

use std::collections::HashMap;
use std::sync::Arc;

pub fn visited_mask(n: usize) -> Vec<bool> {
    // Prose decoy: building vec![false; n] by hand would be slower.
    vec![false; n]
}

pub fn fresh_buffer() -> Vec<u32> {
    let label = "Vec::new() in a string literal is not a site";
    let _ = label;
    Vec::new()
}

pub fn describe(k: usize) -> String {
    format!("k={k}")
}

pub fn owned_copy(name: &str) -> String {
    name.to_string()
}

pub fn doubled(values: &[u32]) -> Vec<u32> {
    values.iter().map(|x| x * 2).collect()
}

pub fn deep_copy(buf: Vec<u32>) -> Vec<u32> {
    buf.clone()
}

pub fn remember(map: &mut HashMap<u64, u32>, key: u64, val: u32) {
    map.insert(key, val);
}

pub fn positional_insert(xs: &mut Vec<u32>, val: u32) {
    // A Vec receiver is not a map: `.insert` stays silent here.
    xs.insert(0, val);
}

pub fn handle_copy(shared: &Arc<u64>) -> Arc<u64> {
    // Refcount bump, not a heap allocation.
    Arc::clone(shared)
}

pub fn discharged(n: usize) -> Vec<u8> {
    // ALLOC: one-time setup buffer, sized once at build.
    vec![0u8; n]
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked() {
        let _ = vec![1u8, 2, 3];
    }
}
