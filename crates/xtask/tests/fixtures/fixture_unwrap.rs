//! Lint fixture: exactly one `.unwrap()` violation, on line 10.

/// Decoys that must not fire:
/// a doc comment mentioning .unwrap()
fn decoy() -> &'static str {
    "a string mentioning .unwrap()"
}

pub fn bad(v: Option<u32>) -> u32 {
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::bad(Some(1)), Some(1).unwrap());
    }
}
