//! Lint fixture: exactly one ad-hoc `Instant::now()` violation, on line 8.

/// Decoys that must not fire: a doc comment mentioning Instant::now()
fn decoy() -> &'static str {
    "a string mentioning Instant::now()"
}
pub fn bad() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_take_raw_clocks() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
        let _ = super::decoy();
    }
}
