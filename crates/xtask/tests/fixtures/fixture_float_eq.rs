//! Lint fixture: one kernel float comparison, on line 7.

pub fn int_eq(a: usize, b: usize) -> bool {
    a == b
}

pub fn bad(a: f32, b: f32) -> bool { a == b }

pub fn range_ok(a: f32) -> bool { a <= 1.0 }
