//! Lint fixture: exactly one `.expect(` violation, on line 6.

// Decoy: .expect("in a comment") must not fire.

pub fn bad(v: Option<u32>) -> u32 {
    v.expect("fixture violation")
}
