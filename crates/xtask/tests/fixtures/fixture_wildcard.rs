//! Lint fixture: one wildcard arm on an error match, on line 13.

pub fn plain_match_ok(n: u32) -> &'static str {
    match n {
        0 => "zero",
        _ => "many",
    }
}

pub fn bad(r: Result<u32, ParseError>) -> u32 {
    match r.map_err(ParseError::normalize) {
        Ok(v) => v,
        _ => 0,
    }
}
