//! Seeds one `no-visited-alloc` violation at line 8.
//! Decoy: `vec![false` in a comment and a string must not fire, and
//! `#[cfg(test)]` code may allocate freely.

/// A search that allocates its visited set per query: the violation.
pub fn bad_search(n: usize) -> usize {
    // decoy in prose: vec![false; n]
    let visited = vec![false; n];
    let s = "vec![false; 3]";
    visited.len() + s.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let v = vec![false; 4];
        assert_eq!(v.len(), 4);
    }
}
