//! Lint fixture: `panic!` on line 7 and `todo!` on line 11.

fn decoy() -> &'static str {
    "panic! in a string must not fire"
}

pub fn bad_panic() { panic!("fixture violation") }

/// Decoy: a doc comment mentioning panic! must not fire.
#[allow(dead_code)]
pub fn bad_todo() { todo!() }
