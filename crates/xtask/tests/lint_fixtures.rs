//! Fixture-driven tests for the lint engine.
//!
//! Each fixture under `tests/fixtures/` seeds one class of violation at a
//! pinned line (plus decoys — strings, comments, and `#[cfg(test)]` code
//! that must NOT fire). The walker skips `fixtures` directories, so these
//! files never pollute the real gate; here they are linted explicitly.

use mqa_xtask::baseline::Baseline;
use mqa_xtask::lint::{self, LintFlags, Rule};

fn findings(name: &str, source: &str, kernel: bool) -> Vec<(usize, Rule)> {
    findings_timed(name, source, kernel, false)
}

fn findings_timed(name: &str, source: &str, kernel: bool, timing: bool) -> Vec<(usize, Rule)> {
    let flags = LintFlags {
        kernel,
        timing,
        arith: false,
        fail_fast_bin: false,
    };
    lint::lint_source(name, source, &flags)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn unwrap_fixture_fires_once_at_pinned_line() {
    let src = include_str!("fixtures/fixture_unwrap.rs");
    assert_eq!(
        findings("fixture_unwrap.rs", src, false),
        vec![(10, Rule::NoUnwrap)]
    );
}

#[test]
fn expect_fixture_fires_once_at_pinned_line() {
    let src = include_str!("fixtures/fixture_expect.rs");
    assert_eq!(
        findings("fixture_expect.rs", src, false),
        vec![(6, Rule::NoExpect)]
    );
}

#[test]
fn panic_fixture_fires_on_panic_and_todo() {
    let src = include_str!("fixtures/fixture_panic.rs");
    assert_eq!(
        findings("fixture_panic.rs", src, false),
        vec![(7, Rule::NoPanic), (11, Rule::NoPanic)]
    );
}

#[test]
fn float_eq_fixture_fires_only_in_kernel_mode() {
    let src = include_str!("fixtures/fixture_float_eq.rs");
    assert_eq!(
        findings("fixture_float_eq.rs", src, true),
        vec![(7, Rule::FloatEq)]
    );
    assert_eq!(findings("fixture_float_eq.rs", src, false), vec![]);
}

#[test]
fn unsafe_fixture_fires_only_without_safety_comment() {
    let src = include_str!("fixtures/fixture_unsafe.rs");
    assert_eq!(
        findings("fixture_unsafe.rs", src, false),
        vec![(9, Rule::UnsafeNoSafety)]
    );
}

#[test]
fn wildcard_fixture_fires_only_on_error_matches() {
    let src = include_str!("fixtures/fixture_wildcard.rs");
    assert_eq!(
        findings("fixture_wildcard.rs", src, false),
        vec![(13, Rule::WildcardErrorMatch)]
    );
}

#[test]
fn instant_fixture_fires_only_with_timing_flag() {
    let src = include_str!("fixtures/fixture_instant.rs");
    assert_eq!(
        findings_timed("fixture_instant.rs", src, false, true),
        vec![(8, Rule::AdHocTiming)]
    );
    // Bench/obs files are linted with the timing flag off.
    assert_eq!(
        findings_timed("fixture_instant.rs", src, false, false),
        vec![]
    );
}

#[test]
fn flow_fixture_fires_each_arith_rule_at_pinned_lines() {
    let src = include_str!("fixtures/fixture_flow.rs");
    let flags = LintFlags {
        kernel: false,
        timing: false,
        arith: true,
        fail_fast_bin: false,
    };
    let hits: Vec<(usize, Rule)> = lint::lint_source("fixture_flow.rs", src, &flags)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect();
    assert_eq!(
        hits,
        vec![
            (7, Rule::NoIndexPanic),
            (16, Rule::NoLossyCast),
            (28, Rule::NoRawDiv),
        ]
    );
    // With the arith flag off (non-serving crates) none of them fire.
    assert_eq!(findings("fixture_flow.rs", src, false), vec![]);
}

#[test]
fn findings_render_as_file_line_rule_excerpt() {
    let src = include_str!("fixtures/fixture_unwrap.rs");
    let all = lint::lint_source("crates/x/src/a.rs", src, &LintFlags::default());
    assert_eq!(all.len(), 1);
    assert_eq!(
        all[0].to_string(),
        "crates/x/src/a.rs:10: [no-unwrap] v.unwrap()"
    );
}

/// End-to-end `lint::run` over a throwaway tree: an unwaived finding
/// fails the gate with the right path and line, a matching waiver
/// suppresses it, and a stale waiver fails the gate again.
#[test]
fn run_applies_baseline_and_flags_stale_waivers() {
    let root = std::env::temp_dir().join(format!("mqa-xtask-lint-fixture-{}", std::process::id()));
    let src_dir = root.join("src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("bad.rs"),
        include_str!("fixtures/fixture_unwrap.rs"),
    )
    .unwrap();

    let outcome = lint::run(&root, &Baseline::empty()).unwrap();
    assert_eq!(outcome.files_scanned, 1);
    assert!(!outcome.is_clean());
    assert_eq!(outcome.findings.len(), 1);
    assert_eq!(outcome.findings[0].file, "src/bad.rs");
    assert_eq!(outcome.findings[0].line, 10);

    let waived = Baseline::parse(
        r#"
[[waiver]]
file = "src/bad.rs"
rule = "no-unwrap"
reason = "fixture exercise"
"#,
    )
    .unwrap();
    let outcome = lint::run(&root, &waived).unwrap();
    assert!(outcome.is_clean());
    assert_eq!(outcome.findings.len(), 0);
    assert_eq!(outcome.waived.len(), 1);

    let stale = Baseline::parse(
        r#"
[[waiver]]
file = "src/bad.rs"
rule = "no-unwrap"
reason = "fixture exercise"

[[waiver]]
file = "src/gone.rs"
rule = "no-panic"
reason = "matches nothing"
"#,
    )
    .unwrap();
    let outcome = lint::run(&root, &stale).unwrap();
    assert!(!outcome.is_clean());
    assert_eq!(outcome.unused_waivers.len(), 1);
    assert!(outcome.unused_waivers[0].contains("src/gone.rs"));

    std::fs::remove_dir_all(&root).ok();
}
