//! Mutation tests for the allocation-freedom gate.
//!
//! The unit tests in `alloc.rs` cover the site scanner on toy sources;
//! these tests pin the scanner against a fixture file with decoys and
//! prove the gate works on the *real* workspace: reintroducing a
//! reachable `Vec::new` flips the analysis red, while the same mutation
//! in unreachable (dead) code stays green. Together they pin both
//! directions — the gate catches regressions on the serving path and
//! does not cry wolf off it.

use mqa_xtask::alloc::{self, AllocKind};
use mqa_xtask::baseline::Baseline;
use mqa_xtask::flow::load_workspace_sources;
use mqa_xtask::lint::{strip, test_mask};
use mqa_xtask::rustlex::{lex, Tok};

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the workspace root")
        .to_path_buf()
}

/// Every allocation kind fires exactly once at its pinned line; none of
/// the decoys (comments, string literals, `#[cfg(test)]` code, the
/// `// ALLOC:`-discharged site, Vec `.insert`, `Arc::clone`) leak in.
#[test]
fn alloc_fixture_fires_each_kind_at_pinned_line() {
    let src = include_str!("fixtures/fixture_alloc.rs");
    let mask = test_mask(&strip(src));
    let toks = lex(src);
    let kept: Vec<&Tok> = toks
        .iter()
        .filter(|t| !mask.get(t.line - 1).copied().unwrap_or(false))
        .collect();
    let discharge = alloc::alloc_mask(src);
    let got: Vec<(AllocKind, usize)> = alloc::scan_alloc_sites(&kept, &discharge)
        .into_iter()
        .map(|s| (s.kind, s.line))
        .collect();
    assert_eq!(
        got,
        vec![
            (AllocKind::VecMacro, 10),
            (AllocKind::Ctor, 16),
            (AllocKind::FormatMacro, 20),
            (AllocKind::ToOwned, 24),
            (AllocKind::Collect, 28),
            (AllocKind::CloneHeap, 32),
            (AllocKind::MapInsert, 36),
        ]
    );
}

/// The checked-in tree must be clean under the checked-in baseline —
/// the same invariant CI enforces, runnable locally via `cargo test`.
#[test]
fn workspace_cone_is_clean_under_baseline() {
    let root = repo_root();
    let baseline_path = root.join("alloc-baseline.toml");
    let baseline = Baseline::load(&baseline_path).expect("alloc-baseline.toml parses");
    let outcome = alloc::run(&root, &baseline).expect("alloc analysis runs");
    assert!(
        outcome.is_clean(),
        "alloc gate dirty: findings={:?} unused={:?}",
        outcome.findings,
        outcome.unused_waivers
    );
    assert!(outcome.stats.entry_fns > 0, "no entry points recognized");
}

/// Injecting `Vec::new()` into a searcher on the serving path must
/// produce a new reachable-alloc finding (the gate goes red).
#[test]
fn reintroduced_reachable_vec_new_flips_the_gate_red() {
    let root = repo_root();
    let mut files = load_workspace_sources(&root).expect("workspace sources load");

    let before = alloc::analyze_sources(&files);

    // Mutate MustFramework::search_scratch — every QueryEngine::submit
    // traversal passes through it.
    let target = files
        .iter_mut()
        .find(|(rel, _)| rel == "crates/retrieval/src/must.rs")
        .expect("must.rs present");
    let marker = "assert!(k > 0, \"k must be >= 1\");";
    assert!(target.1.contains(marker), "mutation anchor moved");
    target.1 = target.1.replace(
        marker,
        "assert!(k > 0, \"k must be >= 1\");\n        let _mutant: Vec<u32> = Vec::new();",
    );

    let after = alloc::analyze_sources(&files);
    let new_ctors: Vec<_> = after
        .findings
        .iter()
        .filter(|f| {
            f.file == "crates/retrieval/src/must.rs"
                && f.excerpt.contains("[alloc-ctor in ")
                && !before
                    .findings
                    .iter()
                    .any(|b| b.file == f.file && b.excerpt == f.excerpt)
        })
        .collect();
    assert_eq!(
        new_ctors.len(),
        1,
        "reachable Vec::new not caught: {:?}",
        after
            .findings
            .iter()
            .filter(|f| f.file.ends_with("must.rs"))
            .collect::<Vec<_>>()
    );
    assert!(
        new_ctors[0]
            .excerpt
            .contains("MustFramework::search_scratch"),
        "finding not attributed to the mutated fn: {}",
        new_ctors[0].excerpt
    );
}

/// Control: the same `Vec::new()` in a function no entry point reaches
/// must NOT appear in the cone (the gate stays green).
#[test]
fn unreachable_vec_new_control_stays_green() {
    let root = repo_root();
    let mut files = load_workspace_sources(&root).expect("workspace sources load");

    let before = alloc::analyze_sources(&files);

    // A free function nothing calls, appended at the end of a serving
    // crate file: inventoried, but outside every entry point's cone.
    let target = files
        .iter_mut()
        .find(|(rel, _)| rel == "crates/retrieval/src/must.rs")
        .expect("must.rs present");
    target
        .1
        .push_str("\npub fn alloc_fixture_dead_code_probe() -> Vec<u32> {\n    Vec::new()\n}\n");

    let after = alloc::analyze_sources(&files);
    assert_eq!(
        before.findings.len(),
        after.findings.len(),
        "dead-code Vec::new leaked into the cone: {:?}",
        after
            .findings
            .iter()
            .filter(|f| f.excerpt.contains("dead_code_probe"))
            .collect::<Vec<_>>()
    );
}
