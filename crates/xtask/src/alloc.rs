//! Allocation-freedom analysis (`mqa-xtask alloc`).
//!
//! The same two-pass call-graph shape as [`crate::flow`] (shared
//! machinery in [`crate::callgraph`]), instantiated for *heap
//! allocation*: pass 1 inventories every allocation-capable site in
//! workspace library code, pass 2 computes the allocation cone from the
//! steady-state serving entry points and reports every reachable site
//! with a sample call chain. PR 3 made search allocation-free by
//! construction (epoch-stamped `SearchScratch`); this gate turns that
//! convention into a machine-checked invariant, cross-validated at
//! runtime by the feature-gated counting allocator in
//! `mqa-engine` (`--features alloc-witness`).
//!
//! **Allocation-capable sites** ([`AllocKind`]):
//! `Vec`/`Box`/`Arc`/`Rc`/`String`/`HashMap`/`BTreeMap`/… constructor
//! calls (`new`/`with_capacity`/`from`/`default`), the `vec![…]` and
//! `format!`-family macros, `.to_string()`/`.to_owned()`/`.to_vec()`,
//! `.collect()`, `.clone()` on a receiver known to own heap storage, and
//! `.insert(…)`/`.entry(…)` on a receiver known to be a map/set. The
//! receiver heuristics are file-granular and deterministic: an identifier
//! (local, param, or struct field) counts as heap-owning when its
//! declared type's *first* capitalized name is a heap container — so
//! `Arc<Vec<T>>` is *not* a heap clone (refcount bump only), while
//! `Vec<T>` is. Unknown receivers are skipped; the runtime witness is
//! the catch-all for what the heuristic cannot see.
//!
//! **Entry points** ([`ALLOC_ENTRY_POINTS`]) are the *steady-state* query
//! path: every `search_with` impl, `QueryEngine::{submit,retrieve,
//! retrieve_batch}` (whose bodies include the worker-job closure),
//! `PageCache::probe`, `ResultCache::get`, `mmr_diversify`, and the
//! trace record path (`record_stage`/`add_search_work`). Build,
//! mutation, and dialogue-turn paths allocate by design and are out of
//! scope.
//!
//! A site is discharged three ways, strictly ordered by preference:
//! 1. **Fix it** — hoist the allocation out of the per-query path.
//! 2. **`// ALLOC:` comment** — same 3-line window as flow's
//!    `// INVARIANT:`; documents *why* the allocation is init-only,
//!    amortized, or a deliberate per-query transfer of ownership.
//! 3. **Waiver** in `alloc-baseline.toml` — mandatory reason, stale
//!    waivers fail the gate; for sites shared across call sites where a
//!    comment would mislead (e.g. whole encode stages).

use crate::baseline::Baseline;
use crate::callgraph::{self, build_cone, discharge_mask, EntryOwner, EntryPoint, Inventory, Site};
use crate::flow::load_workspace_sources;
use crate::lint::{strip, test_mask, Finding, Rule};
use crate::rustlex::{lex, Kind, Tok};
use std::collections::BTreeSet;
use std::path::Path;

/// Heap-container type names whose constructors allocate (or whose
/// values own heap storage, for the clone heuristic).
const HEAP_TYPES: [&str; 11] = [
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Arc",
    "Rc",
];

/// The subset of [`HEAP_TYPES`] whose `.clone()` is a refcount bump, not
/// a deep copy — excluded from the clone heuristic.
const RC_TYPES: [&str; 2] = ["Arc", "Rc"];

/// Map/set containers whose `.insert(…)`/`.entry(…)` can allocate.
const MAP_TYPES: [&str; 4] = ["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Constructor names that produce a (potentially) allocating container.
const CTOR_NAMES: [&str; 4] = ["new", "with_capacity", "from", "default"];

/// Macros that build a `String` per call.
const FORMAT_MACROS: [&str; 2] = ["format", "format_args_alloc"];

/// What kind of allocation-capable construct a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// `Vec::new()` / `HashMap::with_capacity(…)` / `Box::new(…)` /
    /// `Arc::new(…)` / `String::from(…)` — any heap-container
    /// constructor.
    Ctor,
    /// The `vec![…]` macro (subsumes the retired `no-visited-alloc`
    /// lint's `vec![false; n]` check).
    VecMacro,
    /// `format!(…)` — a fresh `String` per call.
    FormatMacro,
    /// `.to_string()` / `.to_owned()` / `.to_vec()`.
    ToOwned,
    /// `.clone()` on a receiver known to own heap storage.
    CloneHeap,
    /// `.collect()` — materializes an iterator into a container.
    Collect,
    /// `.insert(…)` / `.entry(…)` on a known map/set receiver.
    MapInsert,
}

impl AllocKind {
    /// Short display name used in finding excerpts.
    pub fn describe(self) -> &'static str {
        match self {
            AllocKind::Ctor => "alloc-ctor",
            AllocKind::VecMacro => "vec-macro",
            AllocKind::FormatMacro => "format",
            AllocKind::ToOwned => "to-owned",
            AllocKind::CloneHeap => "heap-clone",
            AllocKind::Collect => "collect",
            AllocKind::MapInsert => "map-insert",
        }
    }
}

/// One allocation-capable site.
pub type AllocSite = Site<AllocKind>;

/// Per-line mask from the *raw* source: `true` where an `// ALLOC:`
/// comment on the same line or up to three lines above discharges an
/// allocation site. See [`callgraph::discharge_mask`] for the window
/// semantics.
pub fn alloc_mask(source: &str) -> Vec<bool> {
    discharge_mask(source, "ALLOC:")
}

/// Identifiers (locals, params, struct fields) whose declared type's
/// first capitalized name is a heap container, split into all-heap and
/// map-typed sets. Also catches `let x = vec![…]` / `let x = Vec::new()`
/// initializer forms. File-granular and deterministic, mirroring flow's
/// `float_idents`.
fn heap_idents<'t>(toks: &[&'t Tok]) -> (BTreeSet<&'t str>, BTreeSet<&'t str>) {
    let mut heap = BTreeSet::new();
    let mut maps = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        // `name: Type` — annotation on a param, field, or local.
        if t.kind == Kind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let mut j = i + 2;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct("&") || t.is_ident("mut") || t.kind == Kind::Lifetime)
            {
                j += 1;
            }
            if let Some(ty) = toks.get(j) {
                if ty.kind == Kind::Ident {
                    let name = ty.text.as_str();
                    if HEAP_TYPES.contains(&name) && !RC_TYPES.contains(&name) {
                        heap.insert(t.text.as_str());
                    }
                    if MAP_TYPES.contains(&name) {
                        maps.insert(t.text.as_str());
                    }
                }
            }
        }
        // `let [mut] x = Vec::…` / `let [mut] x = vec![…]`.
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(var) = toks.get(j).filter(|t| t.kind == Kind::Ident) else {
                continue;
            };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                continue;
            }
            if let Some(init) = toks.get(j + 2) {
                if init.kind == Kind::Ident {
                    let name = init.text.as_str();
                    let qualified = toks.get(j + 3).is_some_and(|t| t.is_punct("::"));
                    let is_vec_macro =
                        name == "vec" && toks.get(j + 3).is_some_and(|t| t.is_punct("!"));
                    if (qualified && HEAP_TYPES.contains(&name) && !RC_TYPES.contains(&name))
                        || is_vec_macro
                    {
                        heap.insert(var.text.as_str());
                    }
                    if qualified && MAP_TYPES.contains(&name) {
                        maps.insert(var.text.as_str());
                    }
                }
            }
        }
    }
    (heap, maps)
}

/// Scans a (test-masked) token stream for allocation-capable sites.
/// `mask` is the per-raw-line [`alloc_mask`]; sites on exempted lines are
/// discharged.
pub fn scan_alloc_sites(toks: &[&Tok], mask: &[bool]) -> Vec<AllocSite> {
    let exempt = |line: usize| mask.get(line - 1).copied().unwrap_or(false);
    let (heap, maps) = heap_idents(toks);
    let mut sites = Vec::new();
    let mut push = |kind: AllocKind, t: &Tok, i: usize| {
        if !exempt(t.line) {
            sites.push(AllocSite {
                kind,
                line: t.line,
                tok: i,
            });
        }
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let prev = i.checked_sub(1).map(|p| toks[p]);
        let next = toks.get(i + 1);

        // Macros: `vec![…]`, `format!(…)`.
        if next.is_some_and(|n| n.is_punct("!"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("["))
        {
            if name == "vec" {
                push(AllocKind::VecMacro, t, i);
            } else if FORMAT_MACROS.contains(&name) {
                push(AllocKind::FormatMacro, t, i);
            }
            continue;
        }

        // Qualified constructors: `Vec::new(`, `Vec::<u8>::with_capacity(`,
        // `Box::new(`, `Arc::new(`, `String::from(`, …
        if HEAP_TYPES.contains(&name) && next.is_some_and(|n| n.is_punct("::")) {
            // Step over an optional `::<…>` turbofish.
            let mut j = i + 2;
            if toks.get(j).is_some_and(|n| n.is_punct("<")) {
                j = callgraph_skip_angles(toks, j);
                if toks.get(j).is_some_and(|n| n.is_punct("::")) {
                    j += 1;
                } else {
                    continue;
                }
            }
            if toks
                .get(j)
                .is_some_and(|n| n.kind == Kind::Ident && CTOR_NAMES.contains(&n.text.as_str()))
                && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
            {
                push(AllocKind::Ctor, t, i);
            }
            continue;
        }

        // Method-syntax sites: `.to_string()`, `.to_owned()`, `.to_vec()`,
        // `.collect()`, `.clone()`, `.insert(`, `.entry(`.
        if !prev.is_some_and(|p| p.is_punct(".")) {
            continue;
        }
        let callish = next.is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
        if !callish {
            continue;
        }
        match name {
            "to_string" | "to_owned" | "to_vec" => push(AllocKind::ToOwned, t, i),
            "collect" => push(AllocKind::Collect, t, i),
            "clone" => {
                // Only when the receiver identifier is known heap-owning
                // (`x.clone()` with `x: Vec<…>`, `self.buf.clone()` with
                // `buf: String`, …).
                let recv = i.checked_sub(2).map(|p| toks[p]);
                if recv.is_some_and(|r| r.kind == Kind::Ident && heap.contains(r.text.as_str())) {
                    push(AllocKind::CloneHeap, t, i);
                }
            }
            "insert" | "entry" => {
                let recv = i.checked_sub(2).map(|p| toks[p]);
                if recv.is_some_and(|r| r.kind == Kind::Ident && maps.contains(r.text.as_str())) {
                    push(AllocKind::MapInsert, t, i);
                }
            }
            _ => {}
        }
    }
    sites
}

/// Thin wrapper so the scanner can use the same angle-bracket skipper the
/// call-graph uses (re-exported via `conc`).
fn callgraph_skip_angles(toks: &[&Tok], i: usize) -> usize {
    crate::conc::skip_angles(toks, i)
}

/// The steady-state serving path's designated roots. Deliberately
/// *narrower* than flow's panic entry points: submission/retrieval and
/// the search kernel, but not the dialogue/build/mutation paths, which
/// allocate by design.
pub const ALLOC_ENTRY_POINTS: [EntryPoint; 9] = [
    EntryPoint {
        owner: EntryOwner::AnyImpl,
        name: "search_with",
    },
    EntryPoint {
        owner: EntryOwner::Named("QueryEngine"),
        name: "submit",
    },
    EntryPoint {
        owner: EntryOwner::Named("QueryEngine"),
        name: "retrieve",
    },
    EntryPoint {
        owner: EntryOwner::Named("QueryEngine"),
        name: "retrieve_batch",
    },
    EntryPoint {
        owner: EntryOwner::Named("PageCache"),
        name: "probe",
    },
    EntryPoint {
        owner: EntryOwner::Named("ResultCache"),
        name: "get",
    },
    EntryPoint {
        owner: EntryOwner::Free,
        name: "mmr_diversify",
    },
    EntryPoint {
        owner: EntryOwner::Free,
        name: "record_stage",
    },
    EntryPoint {
        owner: EntryOwner::Free,
        name: "add_search_work",
    },
];

/// Aggregate statistics of one analysis run.
#[derive(Debug, Default, Clone)]
pub struct AllocStats {
    /// Functions inventoried.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Entry-point functions found.
    pub entry_fns: usize,
    /// Functions reachable from an entry point.
    pub reachable_fns: usize,
    /// Allocation-capable sites inventoried workspace-wide (after
    /// `// ALLOC:` discharge).
    pub total_sites: usize,
    /// Sites in reachable functions (the cone, pre-waiver).
    pub cone_sites: usize,
}

/// The raw analysis result, before baseline waivers.
#[derive(Debug, Default)]
pub struct AllocAnalysis {
    /// Cone findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Run statistics.
    pub stats: AllocStats,
}

/// Runs the analysis over in-memory `(repo-relative path, source)` pairs.
/// Unit tests and the mutation fixture enter here.
pub fn analyze_sources(files: &[(String, String)]) -> AllocAnalysis {
    let mut inv: Inventory<AllocKind> =
        Inventory::for_files(files.iter().map(|(rel, _)| rel.clone()).collect());
    let mut total_sites = 0usize;
    for (fi, (rel, source)) in files.iter().enumerate() {
        // Experiment binaries allocate freely; they are not serving code.
        if rel.contains("/src/bin/") {
            continue;
        }
        // The gate tooling itself never links into a serving process, and
        // its generically named methods (`get`, `push`, `load`, `parse`)
        // otherwise alias serving-path calls through the name+arity
        // fallback, dragging phantom chains into the cone.
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        let mask = test_mask(&strip(source));
        let toks = lex(source);
        let kept: Vec<&Tok> = toks
            .iter()
            .filter(|t| !mask.get(t.line - 1).copied().unwrap_or(false))
            .collect();
        let discharge = alloc_mask(source);
        let sites = scan_alloc_sites(&kept, &discharge);
        total_sites += sites.len();
        callgraph::scan_file(fi, &kept, sites, &mut inv);
    }

    let cone = build_cone(&inv, &ALLOC_ENTRY_POINTS);

    let mut findings = Vec::new();
    let mut cone_sites = 0usize;
    for (id, f) in inv.fns.iter().enumerate() {
        if !cone.reached[id] {
            continue;
        }
        for s in &f.sites {
            cone_sites += 1;
            let (rel, source) = &files[f.file];
            let src_line = source
                .lines()
                .nth(s.line - 1)
                .map_or(String::new(), |l| l.trim().to_string());
            findings.push(Finding {
                file: rel.clone(),
                line: s.line,
                rule: Rule::ReachableAlloc,
                excerpt: format!(
                    "{src_line} [{} in {}; via {}]",
                    s.kind.describe(),
                    f.display(),
                    cone.path_to(&inv, id)
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    AllocAnalysis {
        findings,
        stats: AllocStats {
            fns: inv.fns.len(),
            edges: cone.edges,
            entry_fns: cone.entries.len(),
            reachable_fns: cone.reachable_fns(),
            total_sites,
            cone_sites,
        },
    }
}

/// The alloc run's aggregate result (mirror of `flow::FlowOutcome`).
#[derive(Debug)]
pub struct AllocOutcome {
    /// Unwaived cone findings (the gate fails if non-empty).
    pub findings: Vec<Finding>,
    /// Findings suppressed by baseline waivers.
    pub waived: Vec<Finding>,
    /// Baseline entries that matched nothing (stale waivers fail the gate).
    pub unused_waivers: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Analysis statistics.
    pub stats: AllocStats,
}

impl AllocOutcome {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_waivers.is_empty()
    }
}

/// Runs the allocation-freedom analysis over the whole workspace,
/// applying `baseline` waivers (default file: `alloc-baseline.toml`).
///
/// # Errors
/// Returns a message if a directory or file cannot be read.
pub fn run(repo_root: &Path, baseline: &Baseline) -> Result<AllocOutcome, String> {
    let sources = load_workspace_sources(repo_root)?;
    let files_scanned = sources.len();
    let mut analysis = analyze_sources(&sources);
    let all = std::mem::take(&mut analysis.findings);
    let mut used = vec![0usize; baseline.waivers.len()];
    let mut findings = Vec::new();
    let mut waived = Vec::new();
    for f in all {
        let hit = baseline.matching(&f).next();
        match hit {
            Some(i) => {
                used[i] += 1;
                waived.push(f);
            }
            None => findings.push(f),
        }
    }
    let unused_waivers = baseline
        .waivers
        .iter()
        .zip(&used)
        .filter(|(_, &u)| u == 0)
        .map(|(w, _)| w.describe())
        .collect();
    Ok(AllocOutcome {
        findings,
        waived,
        unused_waivers,
        files_scanned,
        stats: analysis.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites_of(src: &str) -> Vec<(AllocKind, usize)> {
        let toks = lex(src);
        let kept: Vec<&Tok> = toks.iter().collect();
        let mask = alloc_mask(src);
        scan_alloc_sites(&kept, &mask)
            .into_iter()
            .map(|s| (s.kind, s.line))
            .collect()
    }

    #[test]
    fn ctors_macros_and_adapters_are_sites() {
        let src = "\
fn f(n: usize) -> Vec<u32> {
    let a = Vec::with_capacity(n);
    let b = vec![0u32; n];
    let c = format!(\"{n}\");
    let d = c.to_string();
    let e = (0..n).map(|i| i as u32).collect();
    let g = Box::new(n);
    let h = Arc::new(n);
    a
}
";
        let kinds: Vec<AllocKind> = sites_of(src).into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            kinds,
            vec![
                AllocKind::Ctor,
                AllocKind::VecMacro,
                AllocKind::FormatMacro,
                AllocKind::ToOwned,
                AllocKind::Collect,
                AllocKind::Ctor,
                AllocKind::Ctor,
            ]
        );
    }

    #[test]
    fn clone_fires_only_on_heap_receivers() {
        let src = "\
struct S { buf: Vec<u8>, handle: Arc<Vec<u8>>, n: u32 }
fn f(s: &S, ids: Vec<u32>, k: u32) {
    let a = ids.clone();
    let b = s.buf.clone();
    let c = s.handle.clone();
    let d = k.clone();
    let e = s.n.clone();
}
";
        assert_eq!(
            sites_of(src),
            vec![(AllocKind::CloneHeap, 3), (AllocKind::CloneHeap, 4)]
        );
    }

    #[test]
    fn map_insert_fires_only_on_map_receivers() {
        let src = "\
fn f(table: &mut BTreeMap<u32, u32>, list: &mut Vec<u32>) {
    table.insert(1, 2);
    table.entry(3);
    list.insert(0, 4);
}
";
        assert_eq!(
            sites_of(src),
            vec![(AllocKind::MapInsert, 2), (AllocKind::MapInsert, 3)]
        );
    }

    #[test]
    fn alloc_comment_discharges_nearby_sites_only() {
        let src = "\
fn f(k: usize) -> Vec<u32> {
    // ALLOC: one sized results buffer per query; ownership moves out.
    let mut out = Vec::with_capacity(k);
    out.push(1);
    out.push(2);
    let extra = vec![0u32; k];
    out
}
";
        assert_eq!(sites_of(src), vec![(AllocKind::VecMacro, 6)]);
    }

    #[test]
    fn turbofish_ctor_is_a_site() {
        let src = "fn f() { let v = Vec::<u8>::new(); }";
        assert_eq!(sites_of(src), vec![(AllocKind::Ctor, 1)]);
    }

    fn analyze(files: &[(&str, &str)]) -> AllocAnalysis {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        analyze_sources(&owned)
    }

    const SEARCHER_LIKE: &str = "\
pub struct Flat;
impl Flat {
    pub fn search_with(&self, k: usize) -> u32 {
        helper(k)
    }
}
fn helper(k: usize) -> u32 {
    let visited = vec![false; k];
    visited.len() as u32
}
fn dead_helper(k: usize) -> Vec<u32> {
    Vec::with_capacity(k)
}
";

    #[test]
    fn reachable_vec_macro_is_found_and_dead_code_is_not() {
        let a = analyze(&[("x/src/flat.rs", SEARCHER_LIKE)]);
        assert_eq!(a.findings.len(), 1, "findings: {:?}", a.findings);
        let f = &a.findings[0];
        assert_eq!(f.line, 8);
        assert_eq!(f.rule, Rule::ReachableAlloc);
        assert!(f.excerpt.contains("vec-macro"), "{}", f.excerpt);
        assert!(f.excerpt.contains("Flat::search_with"), "{}", f.excerpt);
    }

    #[test]
    fn free_fn_entry_points_root_the_cone() {
        let src = "\
pub fn mmr_diversify(k: usize) -> Vec<u32> {
    scoring_pool(k)
}
fn scoring_pool(k: usize) -> Vec<u32> {
    Vec::with_capacity(k)
}
";
        let a = analyze(&[("x/src/diversify.rs", src)]);
        assert_eq!(a.findings.len(), 1, "findings: {:?}", a.findings);
        assert!(a.findings[0].excerpt.contains("scoring_pool"));
    }

    #[test]
    fn test_code_and_bins_are_exempt() {
        let masked = format!("#[cfg(test)]\nmod tests {{\n{SEARCHER_LIKE}\n}}\n");
        let a = analyze(&[("x/src/flat.rs", &masked)]);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
        let b = analyze(&[("x/src/bin/exp.rs", SEARCHER_LIKE)]);
        assert!(b.findings.is_empty(), "findings: {:?}", b.findings);
    }

    #[test]
    fn alloc_comment_keeps_site_out_of_the_cone() {
        let src = "\
pub struct Flat;
impl Flat {
    pub fn search_with(&self, k: usize) -> usize {
        // ALLOC: one sized buffer per query, handed to the caller.
        let out = Vec::with_capacity(k);
        out.len()
    }
}
";
        let a = analyze(&[("x/src/flat.rs", src)]);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }
}
