//! The `obs` smoke command: run a seeded multi-turn dialogue scenario with
//! the journal enabled, then write the three observability artifacts
//! (`journal.jsonl`, `metrics.json`, `report.txt`) into an output
//! directory and self-verify that the expected spans and metrics exist.
//!
//! CI runs this as a hard gate: a refactor that silently drops the
//! instrumentation from a pipeline layer fails the name checks below.

use mqa_core::{Config, Milestone, MqaSystem, StatusMonitor, Turn};
use mqa_kb::DatasetSpec;
use mqa_obs::{report, Snapshot};
use std::path::Path;

/// Spans that must appear in the snapshot after the scenario: one per
/// instrumented pipeline layer (build DAG, per-task stages, retrieval
/// stages, diversification, generation, end-to-end turn).
const REQUIRED_SPANS: [&str; 12] = [
    "core.build",
    "dag.execute",
    "dag.wave",
    "dag.task.data_preprocessing",
    "dag.task.vector_representation",
    "dag.task.index_construction",
    "retrieval.must.search",
    "retrieval.must.encode",
    "retrieval.must.index_search",
    "retrieval.diversify",
    "core.turn",
    "llm.generate",
];

/// Counters that must be non-zero after the scenario.
const REQUIRED_COUNTERS: [&str; 5] = [
    "graph.search.queries",
    "graph.search.evals",
    "llm.mock.calls",
    "llm.mock.prompt_tokens",
    "core.session.turns",
];

/// Histograms that must have recorded at least one sample (per-index
/// search latency plus distance-evaluation work).
const REQUIRED_HISTOGRAMS: [&str; 2] = ["graph.mqa-graph.search_us", "graph.mqa-graph.evals"];

/// What the scenario produced, for the caller to print.
pub struct ObsOutcome {
    /// Metrics snapshot taken after the scenario.
    pub snapshot: Snapshot,
    /// Number of journal lines written.
    pub journal_lines: usize,
    /// The rendered status panel (milestone breakdown included).
    pub status_panel: String,
}

/// Runs the seeded scenario and writes `journal.jsonl`, `metrics.json`
/// and `report.txt` under `out_dir`.
///
/// # Errors
/// Returns a message when the scenario cannot be built, an artifact
/// cannot be written, or a self-check fails (missing span / counter /
/// histogram, empty journal).
pub fn run(out_dir: &Path, seed: u64) -> Result<ObsOutcome, String> {
    mqa_obs::global().reset();
    mqa_obs::journal::global().enable(mqa_obs::journal::DEFAULT_CAP);

    let kb = DatasetSpec::weather()
        .objects(120)
        .concepts(6)
        .caption_noise(0.05)
        .seed(seed)
        .generate();
    let config = Config {
        diversify: Some(0.4),
        carry_history: true,
        ..Config::default()
    };
    let sys = MqaSystem::build(config, kb).map_err(|e| format!("build failed: {e}"))?;

    // A four-round session exercising text, click-refine, reject-refine
    // and a terse history-carried follow-up.
    let mut session = sys.open_session();
    let opener = sys.corpus().kb().get(0).title.clone();
    let phrase = opener
        .rsplit_once(" #")
        .map(|(p, _)| p.to_string())
        .unwrap_or(opener);
    let turns = [
        Turn::text(format!("show me {phrase}")),
        Turn::select_and_text(0, format!("more {phrase} like this one")),
        Turn::reject_and_text(1, "not that one"),
        Turn::text("even more of those"),
    ];
    for turn in turns {
        session.ask(turn).map_err(|e| format!("turn failed: {e}"))?;
    }

    let snapshot = mqa_obs::global().snapshot();
    mqa_obs::journal::snapshot_event(&snapshot);

    // Feed the per-milestone obs breakdown into the status panel, the
    // paper's ② frontend surface.
    let mut status: StatusMonitor = sys.status().clone();
    status.detail(
        Milestone::QueryExecution,
        report::milestone_breakdown(&snapshot),
    );
    let status_panel = status.render();

    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    mqa_obs::journal::global()
        .write_to(&out_dir.join("journal.jsonl"))
        .map_err(|e| format!("writing journal.jsonl: {e}"))?;
    let metrics =
        serde_json::to_string_pretty(&snapshot).map_err(|e| format!("serializing metrics: {e}"))?;
    std::fs::write(out_dir.join("metrics.json"), metrics)
        .map_err(|e| format!("writing metrics.json: {e}"))?;
    let mut rendered = report::render(&snapshot);
    rendered.push('\n');
    rendered.push_str(&status_panel);
    std::fs::write(out_dir.join("report.txt"), &rendered)
        .map_err(|e| format!("writing report.txt: {e}"))?;

    let journal_lines = mqa_obs::journal::global().lines().len();
    mqa_obs::journal::global().disable();

    verify(&snapshot, journal_lines)?;
    Ok(ObsOutcome {
        snapshot,
        journal_lines,
        status_panel,
    })
}

/// The self-checks behind the CI smoke gate.
fn verify(snapshot: &Snapshot, journal_lines: usize) -> Result<(), String> {
    let mut missing = Vec::new();
    if snapshot.spans.is_empty() {
        missing.push("snapshot has zero spans".to_string());
    }
    if journal_lines == 0 {
        missing.push("journal is empty".to_string());
    }
    for name in REQUIRED_SPANS {
        if snapshot.span(name).is_none() {
            missing.push(format!("span `{name}` not recorded"));
        }
    }
    for name in REQUIRED_COUNTERS {
        match snapshot.counter(name) {
            Some(v) if v > 0 => {}
            _ => missing.push(format!("counter `{name}` missing or zero")),
        }
    }
    for name in REQUIRED_HISTOGRAMS {
        match snapshot.histogram(name) {
            Some(h) if h.count > 0 => {}
            _ => missing.push(format!("histogram `{name}` missing or empty")),
        }
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("obs smoke failed:\n  {}", missing.join("\n  ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_emits_all_artifacts_and_passes_self_checks() {
        let _serial = crate::scenario_lock();
        let dir = std::env::temp_dir().join(format!("mqa-xtask-obs-test-{}", std::process::id()));
        let outcome = run(&dir, 42).expect("obs scenario must pass its own smoke checks");
        assert!(outcome.journal_lines > 0);
        assert!(outcome.status_panel.contains("Query Execution"));
        for file in ["journal.jsonl", "metrics.json", "report.txt"] {
            let path = dir.join(file);
            let body = std::fs::read_to_string(&path).expect("artifact readable");
            assert!(!body.is_empty(), "{file} is empty");
        }
        let report = std::fs::read_to_string(dir.join("report.txt")).unwrap();
        assert!(report.contains("Milestones"));
        assert!(report.contains("core.turn"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
