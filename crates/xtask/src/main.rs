//! `mqa-xtask` — the workspace correctness gate.
//!
//! ```text
//! cargo run -p mqa-xtask -- lint   # static source rules + waiver baseline
//! cargo run -p mqa-xtask -- audit  # structural invariant validation
//! ```
//!
//! Both commands exit 0 only when clean, so `ci.sh` can chain them.

use mqa_xtask::baseline::Baseline;
use mqa_xtask::{alloc, audit, conc, engine, flow, lint, mutate, obs, sched, trace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
mqa-xtask — workspace correctness gate

USAGE:
    cargo run -p mqa-xtask -- <COMMAND>

COMMANDS:
    lint [--baseline <path>] [--root <dir>]
        Walk the workspace sources and enforce the lint rules. Findings
        must be fixed or waived in lint-baseline.toml; unused waivers
        also fail the gate.

    conc [--baseline <path>] [--root <dir>]
        Static concurrency analysis: build the global lock-order graph
        from every Mutex/RwLock/TracedMutex acquisition and fail on
        order cycles, non-looped Condvar waits, and guards held across
        blocking calls. Waivers live in conc-baseline.toml.

    flow [--baseline <path>] [--root <dir>]
        Panic-freedom analysis: inventory every function and
        panic-capable construct (unwrap/expect/panic!/assert!, direct
        indexing, raw integer division), build the workspace call graph,
        and fail on any site reachable from a serving entry point.
        Waivers live in flow-baseline.toml.

    alloc [--baseline <path>] [--root <dir>]
        Allocation-freedom analysis: inventory every allocation-capable
        site (container ctors, vec!/format!, to_owned/collect, heap
        clones, map inserts), build the workspace call graph, and fail
        on any site reachable from a steady-state serving entry point
        without an // ALLOC: discharge. Waivers live in
        alloc-baseline.toml.

    audit
        Build every index variant over a synthetic corpus and run the
        structural validators (HNSW, IVF, NavGraph, Dag, MultiVectorStore).

    rules
        List the lint rules with their rationales.

    obs [--out <dir>] [--seed <n>]
        Run a seeded multi-turn dialogue scenario with the mqa-obs journal
        enabled, write journal.jsonl + metrics.json + report.txt into
        <dir> (default results/obs), and fail unless every instrumented
        pipeline layer appears in the snapshot.

    engine [--out <dir>] [--seed <n>]
        Concurrency smoke gate: verify worker-pool answers are identical
        to the serial query path, that paged-search QPS scales with
        workers, and that every engine instrument recorded. Writes
        metrics.json into <dir> (default results/engine).

    mutate [--out <dir>] [--seed <n>]
        Online-mutation gate: run a scripted insert/delete/query mix on a
        2-worker engine. Fails if a tombstoned object surfaces, the
        result-cache generation misses a bump, the delete volume never
        triggers compaction, or a graph.mutate.* instrument stays empty.
        Writes BENCH_mutate.json (insert/delete throughput, search
        p50/p99 during mutation vs quiesced) and metrics.json into <dir>
        (default results/mutate).

    trace [--out <dir>] [--seed <n>]
        Per-query tracing gate: run a seeded dialogue through the
        concurrent engine with tracing enabled; every turn must yield
        exactly one milestone-complete trace with queue-wait / service
        attribution that adds up, deterministic tail sampling, and a
        valid /metrics exposition. Writes traces.jsonl,
        slow_queries.txt, metrics.txt and BENCH_trace.json into <dir>
        (default results/trace).

    sched [--out <dir>] [--seed <n>]
        Deadline-scheduler gate: open-loop arrivals at 2x the engine's
        saturation rate, every query under a fixed latency budget. Fails
        unless every submission resolves to exactly one typed outcome,
        the engine.sched.shed_* counters equal the observed outcomes
        exactly, the shed fraction is nonzero, served queue-wait p99
        stays within the budget, and the dispatcher actually batched.
        Writes BENCH_sched.json and metrics.json into <dir> (default
        results/sched).

EXIT CODES:
    0  clean
    1  findings / violations
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("conc") => cmd_conc(&args[1..]),
        Some("flow") => cmd_flow(&args[1..]),
        Some("alloc") => cmd_alloc(&args[1..]),
        Some("audit") => cmd_audit(),
        Some("rules") => cmd_rules(),
        Some("obs") => cmd_obs(&args[1..]),
        Some("engine") => cmd_engine(&args[1..]),
        Some("mutate") => cmd_mutate(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("sched") => cmd_sched(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if !root.is_dir() {
        eprintln!("lint: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.toml"));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("lint: bad baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match lint::run(&root, &baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &outcome.findings {
        println!("{f}");
        println!("    {}", f.rule.explain());
    }
    for w in &outcome.unused_waivers {
        println!("unused waiver: {w}");
    }
    println!(
        "lint: {} file(s), {} finding(s), {} waived, {} unused waiver(s)",
        outcome.files_scanned,
        outcome.findings.len(),
        outcome.waived.len(),
        outcome.unused_waivers.len()
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_conc(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown conc option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if !root.is_dir() {
        eprintln!("conc: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("conc-baseline.toml"));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("conc: bad baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match conc::run(&root, &baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("conc: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &outcome.findings {
        println!("{f}");
        println!("    {}", f.rule.explain());
    }
    for w in &outcome.unused_waivers {
        println!("unused waiver: {w}");
    }
    println!(
        "conc: {} file(s), {} lock(s), {} order edge(s), {} finding(s), {} waived, {} unused waiver(s)",
        outcome.files_scanned,
        outcome.analysis.lock_names.len(),
        outcome.analysis.edges.len(),
        outcome.findings.len(),
        outcome.waived.len(),
        outcome.unused_waivers.len()
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_flow(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flow option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if !root.is_dir() {
        eprintln!("flow: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("flow-baseline.toml"));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("flow: bad baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match flow::run(&root, &baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("flow: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &outcome.findings {
        println!("{f}");
        println!("    {}", f.rule.explain());
    }
    for w in &outcome.unused_waivers {
        println!("unused waiver: {w}");
    }
    println!(
        "flow: {} file(s), {} fn(s), {} edge(s), {} entry fn(s), {} reachable, \
         {} cone site(s), {} finding(s), {} waived, {} unused waiver(s)",
        outcome.files_scanned,
        outcome.stats.fns,
        outcome.stats.edges,
        outcome.stats.entry_fns,
        outcome.stats.reachable_fns,
        outcome.stats.cone_sites,
        outcome.findings.len(),
        outcome.waived.len(),
        outcome.unused_waivers.len()
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_alloc(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown alloc option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if !root.is_dir() {
        eprintln!("alloc: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("alloc-baseline.toml"));
    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("alloc: bad baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match alloc::run(&root, &baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("alloc: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &outcome.findings {
        println!("{f}");
        println!("    {}", f.rule.explain());
    }
    for w in &outcome.unused_waivers {
        println!("unused waiver: {w}");
    }
    println!(
        "alloc: {} file(s), {} fn(s), {} edge(s), {} entry fn(s), {} reachable, \
         {} site(s) total, {} cone site(s), {} finding(s), {} waived, {} unused waiver(s)",
        outcome.files_scanned,
        outcome.stats.fns,
        outcome.stats.edges,
        outcome.stats.entry_fns,
        outcome.stats.reachable_fns,
        outcome.stats.total_sites,
        outcome.stats.cone_sites,
        outcome.findings.len(),
        outcome.waived.len(),
        outcome.unused_waivers.len()
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_audit() -> ExitCode {
    let report = audit::run(std::path::Path::new("."));
    for entry in &report.entries {
        if entry.violations.is_empty() {
            println!("audit: {:<28} ok", entry.subject);
        } else {
            println!(
                "audit: {:<28} {} violation(s)",
                entry.subject,
                entry.violations.len()
            );
            for v in &entry.violations {
                println!("    {v}");
            }
        }
    }
    println!(
        "audit: {} structure(s), {} violation(s)",
        report.entries.len(),
        report.violation_count()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_rules() -> ExitCode {
    for rule in lint::Rule::ALL {
        println!("{:<22} {}", rule.name(), rule.explain());
    }
    ExitCode::SUCCESS
}

fn cmd_engine(args: &[String]) -> ExitCode {
    let mut out_dir = PathBuf::from("results/engine");
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_dir = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown engine option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match engine::run(&out_dir, seed) {
        Ok(outcome) => {
            let alloc_phase = match outcome.alloc_witness {
                Some((queries, allocs)) => {
                    format!("alloc witness {allocs} alloc(s) over {queries} warmed search(es)")
                }
                None => "alloc witness off (build with --features alloc-witness)".to_string(),
            };
            println!(
                "engine: {} answer(s) identical to serial, paged QPS {:.0} -> {:.0} \
                 ({:.2}x at 4 workers), {} pool job(s), {} witness pair(s), \
                 page cache {} -> {} read(s) ({:.1}x), {} -> {}",
                outcome.identical_answers,
                outcome.serial_qps,
                outcome.concurrent_qps,
                outcome.speedup,
                outcome.jobs_executed,
                outcome.witness_pairs,
                outcome.cold_page_reads,
                outcome.warm_page_reads,
                outcome.cache_read_reduction,
                alloc_phase,
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_mutate(args: &[String]) -> ExitCode {
    let mut out_dir = PathBuf::from("results/mutate");
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_dir = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown mutate option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match mutate::run(&out_dir, seed) {
        Ok(outcome) => {
            println!(
                "mutate: {} insert(s) at {:.0}/s, {} delete(s) at {:.0}/s, \
                 {} compaction(s), epoch {}, {} cache bump(s), \
                 {} quer(ies) clean of dead objects, search p50/p99 \
                 {}/{} us quiesced vs {}/{} us mutating -> {}",
                outcome.inserted,
                outcome.insert_per_sec,
                outcome.removed,
                outcome.delete_per_sec,
                outcome.compactions,
                outcome.final_epoch,
                outcome.generation_bumps,
                outcome.queries_checked,
                outcome.quiesced_p50_us,
                outcome.quiesced_p99_us,
                outcome.mutating_p50_us,
                outcome.mutating_p99_us,
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let mut out_dir = PathBuf::from("results/trace");
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_dir = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown trace option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match trace::run(&out_dir, seed) {
        Ok(outcome) => {
            println!(
                "trace: {} trace(s) ({} engine-served, {} cache hit(s)), \
                 p50 {} us / p99 {} us end-to-end, {:.1}% queue wait, \
                 {} exposition sample(s) with {} exemplar(s) -> {}",
                outcome.traces,
                outcome.engine_served,
                outcome.cache_hits,
                outcome.p50_total_us,
                outcome.p99_total_us,
                outcome.queue_wait_share * 100.0,
                outcome.exposition_samples,
                outcome.exposition_exemplars,
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_sched(args: &[String]) -> ExitCode {
    let mut out_dir = PathBuf::from("results/sched");
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_dir = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown sched option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match sched::run(&out_dir, seed) {
        Ok(outcome) => {
            println!(
                "sched: {} submitted at 2x saturation -> {} served, \
                 {} rejected + {} expired ({:.0}% shed, all typed), \
                 queue-wait p99 {} us within budget, {} batch(es) \
                 at {:.1} mean size -> {}",
                outcome.submitted,
                outcome.served,
                outcome.shed_rejected,
                outcome.shed_expired,
                outcome.shed_fraction * 100.0,
                outcome.p99_queue_wait_us,
                outcome.batches,
                outcome.mean_batch_size,
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_obs(args: &[String]) -> ExitCode {
    let mut out_dir = PathBuf::from("results/obs");
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_dir = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown obs option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match obs::run(&out_dir, seed) {
        Ok(outcome) => {
            print!("{}", outcome.status_panel);
            println!(
                "obs: {} journal line(s), {} span(s), {} counter(s), {} histogram(s) -> {}",
                outcome.journal_lines,
                outcome.snapshot.spans.len(),
                outcome.snapshot.counters.len(),
                outcome.snapshot.histograms.len(),
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
