//! The structural audit: build every index variant over a synthetic
//! corpus and run the validators the data structures carry.
//!
//! The corpus is deterministic (seeded [`mqa_rng::StdRng`]), so an audit
//! failure is always reproducible. Each audited structure contributes one
//! [`AuditEntry`]; the run fails if any entry reports violations.

use mqa_dag::DagBuilder;
use mqa_graph::IndexAlgorithm;
use mqa_graph::UnifiedIndex;
use mqa_rng::StdRng;
use mqa_vector::{Metric, MultiVector, MultiVectorStore, Schema, VectorStore, Weights};
use std::sync::Arc;

/// One audited structure's result.
#[derive(Debug)]
pub struct AuditEntry {
    /// What was audited (e.g. `"index hnsw"`).
    pub subject: String,
    /// Rendered violations; empty = sound.
    pub violations: Vec<String>,
}

/// The whole audit's results.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Per-structure entries, in audit order.
    pub entries: Vec<AuditEntry>,
}

impl AuditReport {
    /// Whether every audited structure was sound.
    pub fn is_clean(&self) -> bool {
        self.entries.iter().all(|e| e.violations.is_empty())
    }

    /// Total violation count.
    pub fn violation_count(&self) -> usize {
        self.entries.iter().map(|e| e.violations.len()).sum()
    }

    fn push<V: std::fmt::Display>(&mut self, subject: &str, violations: Vec<V>) {
        self.entries.push(AuditEntry {
            subject: subject.to_string(),
            violations: violations.iter().map(V::to_string).collect(),
        });
    }
}

/// A clustered synthetic store: `clusters` Gaussian-ish blobs in `dim`
/// dimensions, `n` vectors, fully determined by `seed`.
pub fn synthetic_store(n: usize, dim: usize, clusters: usize, seed: u64) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(-4.0f32..4.0)).collect())
        .collect();
    let mut store = VectorStore::new(dim);
    for i in 0..n {
        let c = &centers[i % clusters];
        let v: Vec<f32> = c.iter().map(|x| x + rng.gen_range(-0.5f32..0.5)).collect();
        store.push(&v);
    }
    store
}

/// A two-modal synthetic object store with a mix of complete and partial
/// objects (every fourth object lacks its image modality).
pub fn synthetic_multivector_store(n: usize, seed: u64) -> MultiVectorStore {
    let schema = Schema::text_image(8, 12);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = MultiVectorStore::new(schema.clone());
    for i in 0..n {
        let text: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let image: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mv = if i % 4 == 3 {
            MultiVector::partial(&schema, vec![Some(text), None])
        } else {
            MultiVector::complete(&schema, vec![text, image])
        };
        store.push(&mv);
    }
    store
}

/// Every selectable index configuration, by panel name.
pub fn all_algorithms() -> Vec<IndexAlgorithm> {
    vec![
        IndexAlgorithm::Flat,
        IndexAlgorithm::ivf(),
        IndexAlgorithm::hnsw(),
        IndexAlgorithm::nsg(),
        IndexAlgorithm::vamana(),
        IndexAlgorithm::mqa_graph(),
    ]
}

/// Runs the full audit: every index variant over the synthetic corpus,
/// the unified multi-modal index, the multi-vector store, and a
/// representative DAG schedule.
pub fn run() -> AuditReport {
    let mut report = AuditReport::default();

    // Single-vector indexes, every variant.
    let store = Arc::new(synthetic_store(500, 16, 8, 0xA0D1));
    for algo in all_algorithms() {
        let built = algo.build_graph(&store, Metric::L2);
        report.push(&format!("index {}", algo.name()), built.validate());
    }

    // The unified multi-modal index (store + learned-weight layout), as
    // assembled by the real system path.
    let mv = synthetic_multivector_store(300, 0xA0D2);
    report.push("multivector store", mv.validate());
    let weights = Weights::normalized(&[2.0, 1.0]);
    for algo in [IndexAlgorithm::hnsw(), IndexAlgorithm::mqa_graph()] {
        let name = format!("unified index ({})", algo.name());
        let unified = UnifiedIndex::build(mv.clone(), weights.clone(), Metric::L2, &algo);
        let snapshot = unified.snapshot();
        let mut violations = snapshot
            .store
            .validate()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>();
        violations.extend(snapshot.graph.validate().iter().map(ToString::to_string));
        report.push(&name, violations);
    }

    // A representative DAG schedule (the shape of the system build
    // pipeline: ingest fans out to per-modality encoders, joins at the
    // index, then the panel).
    let dag = DagBuilder::new()
        .task("ingest", &[], |_| Ok(Vec::new()))
        .task("encode-text", &["ingest"], |_| Ok(Vec::new()))
        .task("encode-image", &["ingest"], |_| Ok(Vec::new()))
        .task("learn-weights", &["encode-text", "encode-image"], |_| {
            Ok(Vec::new())
        })
        .task("build-index", &["learn-weights"], |_| Ok(Vec::new()))
        .task("status-panel", &["build-index"], |_| Ok(Vec::new()));
    match dag.build() {
        Ok(dag) => report.push("dag schedule", dag.validate()),
        Err(e) => report.push("dag schedule", vec![format!("failed to build: {e}")]),
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_audit_is_clean() {
        let report = run();
        assert!(
            report.is_clean(),
            "audit found violations: {:?}",
            report
                .entries
                .iter()
                .filter(|e| !e.violations.is_empty())
                .collect::<Vec<_>>()
        );
        // Every variant plus the unified/store/dag subjects are present.
        assert!(
            report.entries.len() >= 9,
            "{} entries",
            report.entries.len()
        );
    }

    #[test]
    fn synthetic_corpus_is_deterministic() {
        let a = synthetic_store(50, 8, 4, 7);
        let b = synthetic_store(50, 8, 4, 7);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_store(50, 8, 4, 8));
    }
}
