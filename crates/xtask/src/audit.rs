//! The structural audit: build every index variant over a synthetic
//! corpus and run the validators the data structures carry.
//!
//! The corpus is deterministic (seeded [`mqa_rng::StdRng`]), so an audit
//! failure is always reproducible. Each audited structure contributes one
//! [`AuditEntry`]; the run fails if any entry reports violations.

use mqa_dag::DagBuilder;
use mqa_graph::IndexAlgorithm;
use mqa_graph::UnifiedIndex;
use mqa_rng::StdRng;
use mqa_vector::{Metric, MultiVector, MultiVectorStore, Schema, VectorStore, Weights};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// One audited structure's result.
#[derive(Debug)]
pub struct AuditEntry {
    /// What was audited (e.g. `"index hnsw"`).
    pub subject: String,
    /// Rendered violations; empty = sound.
    pub violations: Vec<String>,
}

/// The whole audit's results.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Per-structure entries, in audit order.
    pub entries: Vec<AuditEntry>,
}

impl AuditReport {
    /// Whether every audited structure was sound.
    pub fn is_clean(&self) -> bool {
        self.entries.iter().all(|e| e.violations.is_empty())
    }

    /// Total violation count.
    pub fn violation_count(&self) -> usize {
        self.entries.iter().map(|e| e.violations.len()).sum()
    }

    fn push<V: std::fmt::Display>(&mut self, subject: &str, violations: Vec<V>) {
        self.entries.push(AuditEntry {
            subject: subject.to_string(),
            violations: violations.iter().map(V::to_string).collect(),
        });
    }
}

/// A clustered synthetic store: `clusters` Gaussian-ish blobs in `dim`
/// dimensions, `n` vectors, fully determined by `seed`.
pub fn synthetic_store(n: usize, dim: usize, clusters: usize, seed: u64) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(-4.0f32..4.0)).collect())
        .collect();
    let mut store = VectorStore::new(dim);
    for i in 0..n {
        let c = &centers[i % clusters];
        let v: Vec<f32> = c.iter().map(|x| x + rng.gen_range(-0.5f32..0.5)).collect();
        store.push(&v);
    }
    store
}

/// A two-modal synthetic object store with a mix of complete and partial
/// objects (every fourth object lacks its image modality).
pub fn synthetic_multivector_store(n: usize, seed: u64) -> MultiVectorStore {
    let schema = Schema::text_image(8, 12);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = MultiVectorStore::new(schema.clone());
    for i in 0..n {
        let text: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let image: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mv = if i % 4 == 3 {
            MultiVector::partial(&schema, vec![Some(text), None])
        } else {
            MultiVector::complete(&schema, vec![text, image])
        };
        store.push(&mv);
    }
    store
}

/// Every selectable index configuration, by panel name.
pub fn all_algorithms() -> Vec<IndexAlgorithm> {
    vec![
        IndexAlgorithm::Flat,
        IndexAlgorithm::ivf(),
        IndexAlgorithm::hnsw(),
        IndexAlgorithm::nsg(),
        IndexAlgorithm::vamana(),
        IndexAlgorithm::mqa_graph(),
    ]
}

/// How one source site uses an instrument name.
#[derive(Debug, Default)]
struct InstrumentUse {
    /// `.inc()/.add()/.set()/.record()` directly on the handle, or the
    /// handle stored in a binding (which can write later).
    writable: bool,
    /// First file the name was seen in (for the violation message).
    first_file: String,
}

/// Statically audits every literal `mqa_obs::counter/gauge/histogram("…")`
/// instrument name in the workspace sources.
///
/// Two checks:
/// * **naming** — names follow `<crate>.<component>.<metric>`: at least
///   three non-empty dot-separated segments of `[a-z0-9_-]` characters;
/// * **dead instruments** — every name needs at least one site that can
///   write it (a direct mutation call or a stored handle). A name that is
///   only registered or only asserted on reads zeros forever.
///
/// Formatted names (`&format!(…)`) are skipped: their shape is checked by
/// the naming convention of their literal prefix at review time, and they
/// cannot be matched statically.
pub fn audit_instruments(repo_root: &Path) -> Vec<String> {
    // Built by concatenation so this file's own source never matches.
    let needles: Vec<(String, &str)> = ["counter", "gauge", "histogram"]
        .iter()
        .map(|kind| (format!("{kind}{}", "(\""), *kind))
        .collect();
    let mut files = Vec::new();
    let _ = crate::lint::collect_rs_files(&repo_root.join("crates"), &mut files);

    let mut uses: BTreeMap<String, InstrumentUse> = BTreeMap::new();
    let mut violations = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        // This module defines the checker; its docs and tests mention
        // instrument names without emitting them.
        if rel.ends_with("xtask/src/audit.rs") {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        // Test code registers throwaway names (`t.c`, `x.lat`) that never
        // ship; mask it the same way the lints do.
        let mask = crate::lint::test_mask(&crate::lint::strip(&source));
        let lines: Vec<&str> = source.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            if mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            for (needle, _) in &needles {
                let mut from = 0usize;
                while let Some(pos) = line[from..].find(needle.as_str()) {
                    let name_start = from + pos + needle.len();
                    let Some(name_len) = line[name_start..].find('"') else {
                        break;
                    };
                    let name = &line[name_start..name_start + name_len];
                    let rest = &line[name_start + name_len..];
                    let prefix = line[..from + pos].trim_end();
                    let prefix = prefix
                        .strip_suffix("mqa_obs::")
                        .unwrap_or(prefix)
                        .trim_end();
                    // Reads can be bound (`let v = counter("x").get()`)
                    // without holding a writable handle.
                    let writable = if rest.starts_with("\").get(") || rest.starts_with("\").count(")
                    {
                        false
                    } else {
                        // Long call chains wrap: the method lands on the
                        // next line (`counter("…")\n    .add(n)`).
                        let next_mutates = rest.trim_end() == "\")"
                            && lines.get(idx + 1).is_some_and(|next| {
                                let n = next.trim_start();
                                n.starts_with(".inc(")
                                    || n.starts_with(".add(")
                                    || n.starts_with(".set(")
                                    || n.starts_with(".record(")
                                    || n.starts_with(".record_with_exemplar(")
                            });
                        rest.starts_with("\").inc(")
                            || rest.starts_with("\").add(")
                            || rest.starts_with("\").set(")
                            || rest.starts_with("\").record(")
                            || rest.starts_with("\").record_with_exemplar(")
                            || next_mutates
                            || prefix.ends_with([':', '='])
                    };
                    let entry = uses
                        .entry(name.to_string())
                        .or_insert_with(|| InstrumentUse {
                            writable: false,
                            first_file: rel.clone(),
                        });
                    entry.writable |= writable;
                    from = name_start + name_len;
                }
            }
        }
    }

    for (name, use_) in &uses {
        let segments: Vec<&str> = name.split('.').collect();
        let well_formed = segments.len() >= 3
            && segments.iter().all(|s| {
                !s.is_empty()
                    && s.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_-".contains(c))
            });
        if !well_formed {
            violations.push(format!(
                "instrument `{name}` ({}) violates <crate>.<component>.<metric> naming",
                use_.first_file
            ));
        }
        if !use_.writable {
            violations.push(format!(
                "dead instrument `{name}` ({}): registered or read but never written",
                use_.first_file
            ));
        }
    }
    violations
}

/// Whether the span-site match at `pos` starts on a word boundary —
/// rejects `record_span("…")` registrations and `snap.span("…")` snapshot
/// reads, neither of which emits a stage.
fn span_site_boundary(line: &str, pos: usize) -> bool {
    line[..pos]
        .chars()
        .next_back()
        .map_or(true, |c| !c.is_ascii_alphanumeric() && c != '_' && c != '.')
}

/// Statically audits every literal span name in the workspace sources.
///
/// Two checks:
/// * **naming** — span names follow `<crate>.<component>[.<detail>]`: at
///   least two non-empty dot-separated segments of `[a-z0-9_-]`;
/// * **dead stages** — every witness span the milestone tables reference
///   ([`mqa_obs::trace::QUERY_MILESTONES`] and
///   [`mqa_obs::report::MILESTONE_SPANS`]) must be emitted by at least one
///   `span(…)`/`span_under(…)` site, either as a literal or under a
///   `format!` prefix (`dag.task.{name}`). A table entry nobody emits
///   renders a milestone `(not measured)` forever.
pub fn audit_stages(repo_root: &Path) -> Vec<String> {
    let quote = "(\"";
    let literal_needles: Vec<String> = ["span_under", "span"]
        .iter()
        .map(|kind| format!("{kind}{quote}"))
        .collect();
    let format_needles: Vec<String> = ["span_under", "span"]
        .iter()
        .map(|kind| format!("{kind}(format!{quote}"))
        .collect();
    let mut files = Vec::new();
    let _ = crate::lint::collect_rs_files(&repo_root.join("crates"), &mut files);

    let mut literals: BTreeMap<String, String> = BTreeMap::new();
    let mut prefixes: Vec<String> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.ends_with("xtask/src/audit.rs") {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let mask = crate::lint::test_mask(&crate::lint::strip(&source));
        for (idx, line) in source.lines().enumerate() {
            if mask.get(idx).copied().unwrap_or(false) || line.trim_start().starts_with("//") {
                continue;
            }
            // `span(` is a substring of `span_under(`; scanning the
            // longer needle first and consuming the match keeps the two
            // from double-counting one site.
            let mut consumed: Vec<(usize, usize)> = Vec::new();
            for needle in format_needles.iter().chain(literal_needles.iter()) {
                let formatted = needle.contains("format!");
                let mut from = 0usize;
                while let Some(pos) = line[from..].find(needle.as_str()) {
                    let at = from + pos;
                    let name_start = at + needle.len();
                    from = name_start;
                    if consumed.iter().any(|&(s, e)| at >= s && at < e)
                        || !span_site_boundary(line, at)
                    {
                        continue;
                    }
                    let Some(name_len) = line[name_start..].find('"') else {
                        break;
                    };
                    consumed.push((at, name_start + name_len));
                    let name = &line[name_start..name_start + name_len];
                    if formatted {
                        let prefix = name.split('{').next().unwrap_or(name);
                        prefixes.push(prefix.to_string());
                    } else {
                        literals.entry(name.to_string()).or_insert(rel.clone());
                    }
                }
            }
        }
    }

    let mut violations = Vec::new();
    for (name, file) in &literals {
        let segments: Vec<&str> = name.split('.').collect();
        let well_formed = segments.len() >= 2
            && segments.iter().all(|s| {
                !s.is_empty()
                    && s.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_-".contains(c))
            });
        if !well_formed {
            violations.push(format!(
                "stage `{name}` ({file}) violates <crate>.<component> span naming"
            ));
        }
    }
    let tables: [(&str, &[(&str, &[&str])]); 2] = [
        ("trace::QUERY_MILESTONES", &mqa_obs::trace::QUERY_MILESTONES),
        ("report::MILESTONE_SPANS", &mqa_obs::report::MILESTONE_SPANS),
    ];
    for (table, milestones) in tables {
        for (milestone, witnesses) in milestones.iter() {
            for w in witnesses.iter() {
                let live =
                    literals.contains_key(*w) || prefixes.iter().any(|p| w.starts_with(p.as_str()));
                if !live {
                    violations.push(format!(
                        "dead stage `{w}`: {table} milestone `{milestone}` references it \
                         but no span site emits it"
                    ));
                }
            }
        }
    }
    violations
}

/// Runs the full audit: every index variant over the synthetic corpus,
/// the unified multi-modal index, the multi-vector store, a
/// representative DAG schedule, and the static instrument-name audit.
pub fn run(repo_root: &Path) -> AuditReport {
    let mut report = AuditReport::default();

    report.push("obs instruments", audit_instruments(repo_root));
    report.push("trace stages", audit_stages(repo_root));

    // Single-vector indexes, every variant.
    let store = Arc::new(synthetic_store(500, 16, 8, 0xA0D1));
    for algo in all_algorithms() {
        let built = algo.build_graph(&store, Metric::L2);
        report.push(&format!("index {}", algo.name()), built.validate());
    }

    // The unified multi-modal index (store + learned-weight layout), as
    // assembled by the real system path.
    let mv = synthetic_multivector_store(300, 0xA0D2);
    report.push("multivector store", mv.validate());
    let weights = Weights::normalized(&[2.0, 1.0]);
    for algo in [IndexAlgorithm::hnsw(), IndexAlgorithm::mqa_graph()] {
        let name = format!("unified index ({})", algo.name());
        let unified = UnifiedIndex::build(mv.clone(), weights.clone(), Metric::L2, &algo);
        let snapshot = unified.snapshot();
        let mut violations = snapshot
            .store
            .validate()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>();
        violations.extend(snapshot.graph.validate().iter().map(ToString::to_string));
        report.push(&name, violations);
    }

    // A representative DAG schedule (the shape of the system build
    // pipeline: ingest fans out to per-modality encoders, joins at the
    // index, then the panel).
    let dag = DagBuilder::new()
        .task("ingest", &[], |_| Ok(Vec::new()))
        .task("encode-text", &["ingest"], |_| Ok(Vec::new()))
        .task("encode-image", &["ingest"], |_| Ok(Vec::new()))
        .task("learn-weights", &["encode-text", "encode-image"], |_| {
            Ok(Vec::new())
        })
        .task("build-index", &["learn-weights"], |_| Ok(Vec::new()))
        .task("status-panel", &["build-index"], |_| Ok(Vec::new()));
    match dag.build() {
        Ok(dag) => report.push("dag schedule", dag.validate()),
        Err(e) => report.push("dag schedule", vec![format!("failed to build: {e}")]),
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("xtask sits two levels under the workspace root")
            .to_path_buf()
    }

    #[test]
    fn instrument_audit_is_clean_on_the_workspace() {
        let violations = audit_instruments(&repo_root());
        assert!(violations.is_empty(), "instrument audit: {violations:#?}");
    }

    #[test]
    fn instrument_audit_flags_bad_names_and_dead_instruments() {
        let dir = std::env::temp_dir().join(format!("mqa-xtask-inst-audit-{}", std::process::id()));
        let src = dir.join("crates").join("demo").join("src");
        std::fs::create_dir_all(&src).unwrap();
        let obs = "mqa_obs::";
        std::fs::write(
            src.join("lib.rs"),
            format!(
                "pub fn f() {{\n    {obs}counter{}two.segments{}.inc();\n    let _ = {obs}counter{}demo.dead.reads{}.get();\n    {obs}histogram{}demo.live.lat_us{}.record(1);\n}}\n",
                "(\"", "\")", "(\"", "\")", "(\"", "\")"
            ),
        )
        .unwrap();
        let violations = audit_instruments(&dir);
        assert_eq!(violations.len(), 2, "{violations:#?}");
        assert!(violations.iter().any(|v| v.contains("`two.segments`")));
        assert!(violations
            .iter()
            .any(|v| v.contains("dead instrument `demo.dead.reads`")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_audit_is_clean_on_the_workspace() {
        let violations = audit_stages(&repo_root());
        assert!(violations.is_empty(), "stage audit: {violations:#?}");
    }

    #[test]
    fn stage_audit_flags_bad_names_and_dead_stages() {
        let dir =
            std::env::temp_dir().join(format!("mqa-xtask-stage-audit-{}", std::process::id()));
        let src = dir.join("crates").join("demo").join("src");
        std::fs::create_dir_all(&src).unwrap();
        let obs = "mqa_obs::";
        // `BadName` has one segment; `record_span("core.turn")` must not
        // count as an emission site (word boundary); the `format!` site
        // covers the `dag.task.*` witnesses by prefix.
        std::fs::write(
            src.join("lib.rs"),
            format!(
                "pub fn f(n: &str) {{\n    let _a = {obs}span{q}BadName{p};\n    snap.record_span{q}core.turn{p};\n    let _b = {obs}span(format!{q}dag.task.{{n}}{p});\n}}\n",
                q = "(\"",
                p = "\")"
            ),
        )
        .unwrap();
        let violations = audit_stages(&dir);
        assert!(
            violations.iter().any(|v| v.contains("stage `BadName`")),
            "{violations:#?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| v.contains("dead stage `core.turn`")),
            "record_span must not witness core.turn: {violations:#?}"
        );
        assert!(
            !violations
                .iter()
                .any(|v| v.contains("`dag.task.data_preprocessing`")),
            "format! prefix should witness dag.task.*: {violations:#?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_audit_is_clean() {
        let report = run(&repo_root());
        assert!(
            report.is_clean(),
            "audit found violations: {:?}",
            report
                .entries
                .iter()
                .filter(|e| !e.violations.is_empty())
                .collect::<Vec<_>>()
        );
        // Every variant plus the unified/store/dag subjects are present.
        assert!(
            report.entries.len() >= 9,
            "{} entries",
            report.entries.len()
        );
    }

    #[test]
    fn synthetic_corpus_is_deterministic() {
        let a = synthetic_store(50, 8, 4, 7);
        let b = synthetic_store(50, 8, 4, 7);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_store(50, 8, 4, 8));
    }
}
