//! The `sched` command: the deadline-scheduler admission-control gate.
//!
//! An open-loop arrival process drives a 2-worker [`QueryEngine`] with the
//! micro-batch scheduler enabled at **2× its saturation rate**: every query
//! carries a fixed latency budget, arrivals are paced by wall clock (not by
//! completions), and nothing slows down when the queue builds — exactly the
//! overload regime admission control exists for. The gate fails unless:
//!
//! * every submission resolves to exactly one *typed* outcome — served,
//!   `Rejected`, or `Expired`; a `Canceled` against a live engine or an
//!   unresolved ticket is a silent-drop bug;
//! * the `engine.sched.shed_rejected` / `engine.sched.shed_expired`
//!   counters equal the typed outcomes the driver observed — exactly, not
//!   approximately;
//! * the shed fraction is nonzero (a 2× overload that sheds nothing means
//!   admission control never engaged) and below 1 (a scheduler that sheds
//!   everything serves nobody);
//! * queue-wait p99 for *served* queries stays bounded by the latency
//!   budget — the deadline clamps the tail instead of letting it grow with
//!   the backlog;
//! * the scheduler actually batched: `engine.sched.batches` recorded, and
//!   mean batch size is above 1 (overload with a batch size pinned at 1
//!   means the dispatcher never amortized a wakeup).
//!
//! It writes `BENCH_sched.json` under the output directory: arrival vs
//! saturation rate, served/shed split, queue-wait and service tails, and
//! batch shape — the paper-facing evidence that overload degrades by
//! policy, not by collapse.

use mqa_engine::{Deadline, EngineOptions, QueryEngine, SchedOptions, TicketError};
use mqa_retrieval::{FrameworkKind, MultiModalQuery, RetrievalFramework, RetrievalOutput};
use mqa_vector::Candidate;
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Workers draining the scheduler.
const WORKERS: usize = 2;
/// Fixed per-query service time of the synthetic framework.
const SERVICE_US: u64 = 2_000;
/// Worker-pool queue capacity (small, so overload reaches the scheduler's
/// watermark instead of hiding in the pool queue).
const QUEUE_CAP: usize = 8;
/// Admission watermark: pending scheduler entries beyond this are
/// Rejected. Sized below the backlog the deadline alone would allow
/// (`DEADLINE_US / INTERARRIVAL_US` = 20 arrivals), so under sustained
/// 2x overload the watermark engages before expiry shedding can hide it.
const WATERMARK: usize = 8;
/// Largest micro-batch the dispatcher forms.
const MAX_BATCH: usize = 8;
/// Per-query latency budget.
const DEADLINE_US: u64 = 10_000;
/// Open-loop arrivals.
const QUERIES: usize = 400;
/// Interarrival gap: `SERVICE_US / WORKERS / 2` = 2× the saturation rate.
const INTERARRIVAL_US: u64 = SERVICE_US / WORKERS as u64 / 2;

/// The `BENCH_sched.json` payload.
#[derive(Debug, Serialize)]
struct BenchSched {
    arrival_qps: f64,
    saturation_qps: f64,
    submitted: u64,
    served: u64,
    shed_rejected: u64,
    shed_expired: u64,
    shed_fraction: f64,
    deadline_us: u64,
    p50_queue_wait_us: u64,
    p99_queue_wait_us: u64,
    p99_service_us: u64,
    batches: u64,
    mean_batch_size: f64,
}

/// What the gate measured, for the caller to print.
pub struct SchedOutcome {
    /// Open-loop submissions.
    pub submitted: u64,
    /// Tickets that resolved with an answer.
    pub served: u64,
    /// Typed `Rejected` outcomes (admission watermark).
    pub shed_rejected: u64,
    /// Typed `Expired` outcomes (budget ran out before pickup).
    pub shed_expired: u64,
    /// `(shed_rejected + shed_expired) / submitted`.
    pub shed_fraction: f64,
    /// Queue-wait tail for served queries.
    pub p99_queue_wait_us: u64,
    /// Micro-batches the dispatcher formed.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub mean_batch_size: f64,
}

/// Answers after a fixed busy period — a framework whose service rate is
/// known exactly, so the 2× overload factor is by construction.
struct SleepFramework;

impl RetrievalFramework for SleepFramework {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Must
    }

    fn search(&self, query: &MultiModalQuery, k: usize, _ef: usize) -> RetrievalOutput {
        std::thread::sleep(Duration::from_micros(SERVICE_US));
        let len = query.text.as_deref().map_or(0, str::len);
        RetrievalOutput {
            results: vec![Candidate::new(k as u32, len as f32)],
            ..Default::default()
        }
    }

    fn describe(&self) -> String {
        format!("fixed {SERVICE_US}us sleep")
    }
}

/// Runs the open-loop overload scenario and writes `BENCH_sched.json` and
/// `metrics.json` under `out_dir`.
///
/// # Errors
/// Returns a message when a ticket resolves to an untyped outcome, the
/// shed counters disagree with observed outcomes, the shed fraction is
/// degenerate (0 or 1), the served queue-wait tail exceeds the budget,
/// the dispatcher never batched, or an artifact cannot be written.
pub fn run(out_dir: &Path, seed: u64) -> Result<SchedOutcome, String> {
    mqa_obs::global().reset();

    let engine = QueryEngine::new(
        Arc::new(SleepFramework),
        EngineOptions {
            workers: WORKERS,
            queue_cap: QUEUE_CAP,
            sched: Some(SchedOptions {
                watermark: WATERMARK,
                max_batch: MAX_BATCH,
            }),
        },
    );

    // Open loop: arrival i is due at `i * INTERARRIVAL_US` on the wall
    // clock regardless of how far behind the workers are. The seed only
    // varies query text (and hence nothing the scheduler keys on) — the
    // gate's verdict must not depend on it.
    let clock = mqa_obs::Stopwatch::start();
    let mut tickets = Vec::with_capacity(QUERIES);
    let mut shed_rejected = 0u64;
    let mut shed_expired = 0u64;
    for i in 0..QUERIES {
        let due = i as u64 * INTERARRIVAL_US;
        let now = clock.elapsed_us();
        if due > now {
            std::thread::sleep(Duration::from_micros(due - now));
        }
        let text = format!("q{}", seed.wrapping_add(i as u64));
        match engine.submit_with_deadline(
            MultiModalQuery::text(text),
            1,
            8,
            Some(Deadline::in_us(DEADLINE_US)),
        ) {
            Ok(t) => tickets.push(t),
            Err(TicketError::Rejected) => shed_rejected += 1,
            Err(TicketError::Expired) => shed_expired += 1,
            Err(TicketError::Canceled) => {
                return Err("sched gate failed: Canceled at submit against a live engine".into())
            }
        }
    }
    let mut served = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_) => served += 1,
            Err(TicketError::Rejected) => shed_rejected += 1,
            Err(TicketError::Expired) => shed_expired += 1,
            Err(TicketError::Canceled) => {
                return Err(
                    "sched gate failed: a ticket resolved Canceled against a live engine — \
                     a silent drop wearing a type"
                        .into(),
                )
            }
        }
    }
    drop(engine);

    let submitted = QUERIES as u64;
    if served + shed_rejected + shed_expired != submitted {
        return Err(format!(
            "sched gate failed: conservation broken — {submitted} submitted but \
             {served} served + {shed_rejected} rejected + {shed_expired} expired"
        ));
    }

    let snapshot = mqa_obs::global().snapshot();
    verify_instruments(&snapshot, shed_rejected, shed_expired)?;

    let shed_fraction = (shed_rejected + shed_expired) as f64 / submitted as f64;
    if shed_fraction == 0.0 {
        return Err(format!(
            "sched gate failed: 2x overload ({QUERIES} arrivals at \
             {INTERARRIVAL_US}us spacing against {WORKERS}x{SERVICE_US}us workers) \
             shed nothing — admission control never engaged"
        ));
    }
    if served == 0 {
        return Err("sched gate failed: the scheduler shed every query — \
             overload must degrade, not deny, service"
            .to_string());
    }

    let queue_wait = snapshot
        .histogram("engine.query.queue_wait_us")
        .ok_or("sched gate failed: histogram `engine.query.queue_wait_us` missing")?;
    // Served queries pass the worker-side expiry check before queue wait
    // is recorded, so the tail must sit at or below the budget; the log2
    // bucket estimate is capped at the observed max, so a small pickup
    // slack is the only tolerance needed.
    let bound = DEADLINE_US + DEADLINE_US / 4;
    if queue_wait.p99 > bound {
        return Err(format!(
            "sched gate failed: served queue-wait p99 {}us exceeds the \
             {DEADLINE_US}us budget (bound {bound}us) — deadlines are not \
             clamping the tail",
            queue_wait.p99
        ));
    }
    let service = snapshot
        .histogram("engine.query.latency_us")
        .ok_or("sched gate failed: histogram `engine.query.latency_us` missing")?;

    let batches = snapshot.counter("engine.sched.batches").unwrap_or(0);
    let batch_size = snapshot
        .histogram("engine.sched.batch_size")
        .ok_or("sched gate failed: histogram `engine.sched.batch_size` missing")?;
    if batches == 0 || batch_size.count == 0 {
        return Err("sched gate failed: the dispatcher never formed a batch".to_string());
    }
    let mean_batch_size = batch_size.sum as f64 / batch_size.count as f64;
    if mean_batch_size <= 1.0 {
        return Err(format!(
            "sched gate failed: mean batch size {mean_batch_size:.2} under 2x \
             overload — the dispatcher is waking workers one query at a time"
        ));
    }

    let bench = BenchSched {
        arrival_qps: 1e6 / INTERARRIVAL_US as f64,
        saturation_qps: WORKERS as f64 * 1e6 / SERVICE_US as f64,
        submitted,
        served,
        shed_rejected,
        shed_expired,
        shed_fraction,
        deadline_us: DEADLINE_US,
        p50_queue_wait_us: queue_wait.p50,
        p99_queue_wait_us: queue_wait.p99,
        p99_service_us: service.p99,
        batches,
        mean_batch_size,
    };
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let payload = serde_json::to_string_pretty(&bench)
        .map_err(|e| format!("serializing BENCH_sched.json: {e}"))?;
    std::fs::write(out_dir.join("BENCH_sched.json"), payload)
        .map_err(|e| format!("writing BENCH_sched.json: {e}"))?;
    let metrics =
        serde_json::to_string_pretty(&snapshot).map_err(|e| format!("serializing metrics: {e}"))?;
    std::fs::write(out_dir.join("metrics.json"), metrics)
        .map_err(|e| format!("writing metrics.json: {e}"))?;

    Ok(SchedOutcome {
        submitted,
        served,
        shed_rejected,
        shed_expired,
        shed_fraction,
        p99_queue_wait_us: queue_wait.p99,
        batches,
        mean_batch_size,
    })
}

/// The instrument self-checks: the shed counters must equal the typed
/// outcomes the driver observed, one increment per outcome.
fn verify_instruments(
    snapshot: &mqa_obs::Snapshot,
    shed_rejected: u64,
    shed_expired: u64,
) -> Result<(), String> {
    let mut wrong = Vec::new();
    // A counter nobody incremented is absent from the snapshot; absent
    // and zero are the same observation.
    let rejected = snapshot.counter("engine.sched.shed_rejected").unwrap_or(0);
    if rejected != shed_rejected {
        wrong.push(format!(
            "counter `engine.sched.shed_rejected` expected {shed_rejected}, got {rejected}"
        ));
    }
    let expired = snapshot.counter("engine.sched.shed_expired").unwrap_or(0);
    if expired != shed_expired {
        wrong.push(format!(
            "counter `engine.sched.shed_expired` expected {shed_expired}, got {expired}"
        ));
    }
    if wrong.is_empty() {
        Ok(())
    } else {
        Err(format!("sched gate failed:\n  {}", wrong.join("\n  ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_and_writes_bench() {
        let _serial = crate::scenario_lock();
        let dir = std::env::temp_dir().join(format!("mqa-xtask-sched-test-{}", std::process::id()));
        let outcome = run(&dir, 42).expect("sched gate must pass on a healthy tree");
        assert_eq!(
            outcome.served + outcome.shed_rejected + outcome.shed_expired,
            outcome.submitted
        );
        assert!(outcome.shed_fraction > 0.0 && outcome.shed_fraction < 1.0);
        assert!(outcome.batches >= 1 && outcome.mean_batch_size > 1.0);
        let body = std::fs::read_to_string(dir.join("BENCH_sched.json")).expect("bench readable");
        for field in [
            "arrival_qps",
            "saturation_qps",
            "shed_fraction",
            "p99_queue_wait_us",
            "mean_batch_size",
        ] {
            assert!(body.contains(field), "BENCH_sched.json missing {field}");
        }
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics readable");
        assert!(metrics.contains("engine.sched.batch_size"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
