//! The `engine` smoke command: prove the concurrent query engine is both
//! *correct* (worker-pool answers are bit-identical to the serial path)
//! and *worth having* (QPS on a latency-bound paged workload scales with
//! workers), then write a metrics snapshot for the CI artifact trail.
//!
//! CI runs this as a hard gate after `obs`: a refactor that breaks
//! scratch-threading shows up as an answer mismatch, and a regression
//! that serializes the pool (an accidental global lock on the search
//! path) shows up as a speedup below [`MIN_SPEEDUP`].
//!
//! The correctness phase also runs with the engine's `lock-witness`
//! enabled: every `TracedMutex` acquisition order observed at runtime is
//! cross-validated against the static lock-order graph extracted by
//! [`crate::conc`] — a runtime-held edge the static analysis lacks means
//! the `conc` gate is blind to a real acquisition order and fails here.
//! The witness is switched off again before the throughput phase so the
//! recording mutex never touches the measured speedup.

use mqa_cache::PageCache;
use mqa_core::{Config, MqaSystem};
use mqa_engine::sync::witness;
use mqa_engine::{EngineOptions, QueryEngine, WorkerPool};
use mqa_graph::starling::{DeviceProfile, LayoutStrategy, PageLayout, PagedIndex};
use mqa_graph::FlatDistance;
use mqa_kb::DatasetSpec;
use mqa_retrieval::MultiModalQuery;
use mqa_rng::StdRng;
use mqa_vector::{Metric, VectorStore};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Workers used for the concurrent side of both checks.
const WORKERS: usize = 4;

/// Minimum accepted QPS ratio (4 workers vs 1) on the paged workload.
/// The device latency dominates, so a healthy pool lands well above this;
/// an accidentally serialized pool lands at ~1.0.
const MIN_SPEEDUP: f64 = 1.8;

/// Simulated per-page device read latency for the throughput check.
const READ_LATENCY: Duration = Duration::from_micros(200);

/// Minimum accepted reduction in distinct simulated page reads when the
/// default-capacity page cache is warm versus uncached.
const MIN_CACHE_REDUCTION: f64 = 3.0;

/// What the gate measured, for the caller to print.
pub struct EngineOutcome {
    /// Queries whose engine answers matched the serial path exactly.
    pub identical_answers: usize,
    /// Paged-workload QPS with a single worker.
    pub serial_qps: f64,
    /// Paged-workload QPS with [`WORKERS`] workers.
    pub concurrent_qps: f64,
    /// `concurrent_qps / serial_qps`.
    pub speedup: f64,
    /// Jobs executed across the pool's per-worker counters.
    pub jobs_executed: u64,
    /// Distinct lock-acquisition pairs the runtime witness recorded
    /// during the correctness phase (and validated against the static
    /// lock graph).
    pub witness_pairs: usize,
    /// Distinct simulated page reads over the query set without a cache.
    pub cold_page_reads: u64,
    /// Distinct simulated page reads on the warm-cache pass.
    pub warm_page_reads: u64,
    /// `cold_page_reads / max(warm_page_reads, 1)`.
    pub cache_read_reduction: f64,
    /// Allocation-witness phase result: `Some((queries, allocations))`
    /// when the gate binary was built with `--features alloc-witness` —
    /// warmed paged searches measured, total heap allocations observed
    /// (the phase fails unless allocations == 0). `None` when the
    /// counting allocator is compiled out.
    pub alloc_witness: Option<(usize, u64)>,
}

/// Runs both checks and writes `metrics.json` under `out_dir`.
///
/// # Errors
/// Returns a message when the system cannot be built, an answer diverges
/// from the serial path, the speedup misses [`MIN_SPEEDUP`], an engine
/// instrument stayed empty, or the snapshot cannot be written.
pub fn run(out_dir: &Path, seed: u64) -> Result<EngineOutcome, String> {
    mqa_obs::global().reset();
    witness::reset();
    witness::enable(true);
    let identical_answers = check_answers_match_serial(seed)?;
    witness::enable(false);
    let witness_pairs = check_lock_witness()?;
    let (serial_qps, concurrent_qps, jobs_executed) = check_paged_speedup(seed)?;
    let speedup = concurrent_qps / serial_qps;
    if speedup < MIN_SPEEDUP {
        return Err(format!(
            "engine smoke failed: paged QPS speedup {speedup:.2}x at {WORKERS} workers \
             is below the {MIN_SPEEDUP}x gate ({serial_qps:.0} -> {concurrent_qps:.0} QPS)"
        ));
    }
    let (cold_page_reads, warm_page_reads) = check_page_cache(seed)?;
    let cache_read_reduction = cold_page_reads as f64 / (warm_page_reads.max(1)) as f64;
    let alloc_witness = check_alloc_freedom(seed)?;

    let snapshot = mqa_obs::global().snapshot();
    verify_instruments(&snapshot)?;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let metrics =
        serde_json::to_string_pretty(&snapshot).map_err(|e| format!("serializing metrics: {e}"))?;
    std::fs::write(out_dir.join("metrics.json"), metrics)
        .map_err(|e| format!("writing metrics.json: {e}"))?;

    Ok(EngineOutcome {
        identical_answers,
        serial_qps,
        concurrent_qps,
        speedup,
        jobs_executed,
        witness_pairs,
        cold_page_reads,
        warm_page_reads,
        cache_read_reduction,
        alloc_witness,
    })
}

/// Check 4 — allocation freedom (armed by `--features alloc-witness`):
/// the runtime cross-check of the `mqa-xtask alloc` static cone. Builds
/// the same Vamana-behind-Starling index as the throughput check, runs
/// every query once to warm the scratch (visited sets, frontier, beam)
/// and the metric registry, then runs the same queries again with the
/// counting allocator bracketing each `search_paged_into` call. A warmed
/// steady-state search must perform **zero** heap allocations; any count
/// above zero means an allocation escaped both the static gate and its
/// discharge comments. Returns `Ok(None)` when the witness is compiled
/// out (the default build), so the gate stays meaningful either way.
fn check_alloc_freedom(seed: u64) -> Result<Option<(usize, u64)>, String> {
    if !mqa_engine::allocwitness::enabled() {
        return Ok(None);
    }
    // The lock witness must be off: its recording path allocates by
    // design (pair tables, per-edge counters) and would be charged to
    // the measured searches.
    witness::enable(false);
    let (n, dim, queries) = (1_200, 8, 40usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = VectorStore::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        store.push(&v);
    }
    let store = Arc::new(store);
    let nav = mqa_graph::vamana::build(&store, Metric::L2, 16, 48, 1.2, seed.wrapping_add(3));
    let layout = PageLayout::build(nav.graph(), 8, LayoutStrategy::BfsCluster);
    let paged = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout);
    let query_vecs: Vec<Vec<f32>> = (0..queries)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    let mut scratch = mqa_graph::SearchScratch::new();
    let mut hits = Vec::new();
    // Warmup: the same query set, so every buffer (visited stamps,
    // frontier, beam, result list, metric-name registrations) reaches
    // its steady-state capacity before anything is measured.
    for q in &query_vecs {
        let mut dist = FlatDistance::new(&store, q, Metric::L2)
            .map_err(|e| format!("alloc witness: distance setup failed: {e}"))?;
        paged.search_paged_into(&mut dist, 10, 32, &mut scratch, &mut hits);
    }
    let mut total_allocs = 0u64;
    let mut measured = 0usize;
    for q in &query_vecs {
        let mut dist = FlatDistance::new(&store, q, Metric::L2)
            .map_err(|e| format!("alloc witness: distance setup failed: {e}"))?;
        let cp = mqa_engine::allocwitness::checkpoint();
        let out = paged.search_paged_into(&mut dist, 10, 32, &mut scratch, &mut hits);
        let (allocs, bytes) = cp.delta_checked().ok_or_else(|| {
            "alloc witness: thread-local counters unreadable mid-measurement \
             (TLS destruction) — refusing to report a fabricated zero delta"
                .to_string()
        })?;
        if hits.is_empty() || out.evals == 0 {
            return Err("alloc witness: a measured search produced no work".to_string());
        }
        total_allocs += allocs;
        measured += 1;
        mqa_obs::global()
            .histogram("engine.allocwitness.query_bytes")
            .record(bytes);
    }
    if total_allocs != 0 {
        return Err(format!(
            "engine smoke failed: {total_allocs} heap allocation(s) observed \
             across {measured} warmed steady-state paged searches — the \
             serving path is not allocation-free (static gate: `mqa-xtask \
             alloc`)"
        ));
    }
    Ok(Some((measured, total_allocs)))
}

/// Check 1b — the runtime lock-order witness agrees with the static
/// analysis: the traced locks saw real traffic (at least one sequential
/// pair), every runtime-held edge exists in the static lock graph, and
/// every observed lock name traces back to a `TracedMutex::new` literal.
fn check_lock_witness() -> Result<usize, String> {
    let pairs = witness::pairs();
    if !pairs.iter().any(|p| !p.held) {
        return Err(
            "engine smoke failed: the lock witness recorded no sequential \
             acquisition pairs — the traced engine locks saw no traffic \
             during the correctness phase"
                .to_string(),
        );
    }
    // The static graph comes from the sources, so anchor on this crate's
    // manifest dir — the gate's unit test runs with cwd=crates/xtask.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = crate::conc::analyze_workspace(&repo_root)
        .map_err(|e| format!("engine smoke failed: static lock graph unavailable: {e}"))?;
    for p in pairs.iter().filter(|p| p.held) {
        let known = analysis
            .edges
            .iter()
            .any(|e| e.from == p.from && e.to == p.to);
        if !known {
            return Err(format!(
                "engine smoke failed: runtime lock-order edge `{}` -> `{}` \
                 (held, observed {}x) is absent from the static lock graph — \
                 `mqa-xtask conc` is blind to a real acquisition order",
                p.from, p.to, p.count
            ));
        }
    }
    for p in &pairs {
        for name in [&p.from, &p.to] {
            if !analysis.traced_names.contains(name.as_str()) {
                return Err(format!(
                    "engine smoke failed: witness observed lock `{name}` with no \
                     matching TracedMutex::new(\"{name}\", …) in the workspace sources"
                ));
            }
        }
    }
    Ok(pairs.len())
}

/// Check 1 — correctness: route real multi-modal queries through a
/// 4-worker [`QueryEngine`] over the system's framework and demand the
/// exact result ids and distances of the serial path.
fn check_answers_match_serial(seed: u64) -> Result<usize, String> {
    let kb = DatasetSpec::weather()
        .objects(160)
        .concepts(8)
        .caption_noise(0.1)
        .seed(seed)
        .generate();
    let sys = MqaSystem::build(Config::default(), kb).map_err(|e| format!("build failed: {e}"))?;
    let queries: Vec<MultiModalQuery> = (0..12)
        .map(|i| {
            let title = &sys.corpus().kb().get(i * 13).title;
            let phrase = title.rsplit_once(" #").map_or(title.as_str(), |(p, _)| p);
            MultiModalQuery::text(phrase)
        })
        .collect();

    let framework = Arc::clone(sys.framework());
    let serial: Vec<_> = queries
        .iter()
        .map(|q| framework.search(q, 10, 64))
        .collect();
    let engine = QueryEngine::new(framework, EngineOptions::with_workers(WORKERS));
    let concurrent = engine
        .retrieve_batch(queries.clone(), 10, 64)
        .map_err(|e| format!("engine refused the batch: {e}"))?;

    for (i, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
        if s.ids() != c.ids() {
            return Err(format!(
                "engine smoke failed: query {i} answers diverge \
                 (serial {:?} vs engine {:?})",
                s.ids(),
                c.ids()
            ));
        }
    }
    Ok(serial.len())
}

/// Check 2 — throughput: a Vamana graph behind the Starling paged layout
/// with a simulated device latency, swept at 1 worker then [`WORKERS`].
/// Returns `(serial_qps, concurrent_qps, jobs_executed)`.
fn check_paged_speedup(seed: u64) -> Result<(f64, f64, u64), String> {
    let (n, dim, queries) = (1_200, 8, 40usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = VectorStore::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        store.push(&v);
    }
    let store = Arc::new(store);
    let nav = mqa_graph::vamana::build(&store, Metric::L2, 16, 48, 1.2, seed.wrapping_add(3));
    let layout = PageLayout::build(nav.graph(), 8, LayoutStrategy::BfsCluster);
    let paged = Arc::new(
        PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout)
            .with_device(DeviceProfile::with_read_latency(READ_LATENCY)),
    );
    let query_vecs: Arc<Vec<Vec<f32>>> = Arc::new(
        (0..queries)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect(),
    );

    let mut qps = [0.0f64; 2];
    for (slot, workers) in [(0, 1), (1, WORKERS)] {
        let answered = Arc::new(AtomicUsize::new(0));
        let sw = mqa_obs::Stopwatch::start();
        {
            let pool = WorkerPool::new(workers, 2 * queries);
            for qi in 0..queries {
                let paged = Arc::clone(&paged);
                let store = Arc::clone(&store);
                let query_vecs = Arc::clone(&query_vecs);
                let answered = Arc::clone(&answered);
                pool.submit(Box::new(move |scratch| {
                    if let Ok(mut dist) = FlatDistance::new(&store, &query_vecs[qi], Metric::L2) {
                        let out = paged.search_paged_with(&mut dist, 10, 32, scratch);
                        if !out.results.is_empty() {
                            answered.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }))
                .map_err(|e| format!("pool refused work: {e}"))?;
            }
            // Dropping the pool drains the queue and joins the workers.
        }
        let answered = answered.load(Ordering::SeqCst);
        if answered != queries {
            return Err(format!(
                "engine smoke failed: {answered}/{queries} paged searches \
                 produced results at {workers} worker(s)"
            ));
        }
        qps[slot] = queries as f64 / (sw.elapsed_us().max(1) as f64 / 1e6);
    }

    let snapshot = mqa_obs::global().snapshot();
    let jobs_executed: u64 = (0..WORKERS)
        .filter_map(|i| snapshot.counter(&format!("engine.worker.{i}.jobs")))
        .sum();
    Ok((qps[0], qps[1], jobs_executed))
}

/// Check 3 — the shared page cache: the same Vamana-behind-Starling
/// setup as the throughput check, queried uncached and then through a
/// default-capacity [`PageCache`], cold pass then warm pass. Answers must
/// be bit-identical in every pass, and the warm pass must issue at least
/// [`MIN_CACHE_REDUCTION`]× fewer distinct simulated page reads than the
/// uncached baseline. Returns `(cold_page_reads, warm_page_reads)`.
fn check_page_cache(seed: u64) -> Result<(u64, u64), String> {
    let (n, dim, queries) = (1_200, 8, 40usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = VectorStore::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        store.push(&v);
    }
    let store = Arc::new(store);
    let nav = mqa_graph::vamana::build(&store, Metric::L2, 16, 48, 1.2, seed.wrapping_add(3));
    let layout = PageLayout::build(nav.graph(), 8, LayoutStrategy::BfsCluster);
    let plain = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout.clone());
    let cached = PagedIndex::new(nav.graph().clone(), nav.entries().to_vec(), layout)
        .with_page_cache(Arc::new(PageCache::with_default_capacity()));
    let query_vecs: Vec<Vec<f32>> = (0..queries)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    let run_pass = |index: &PagedIndex| -> Result<(Vec<Vec<(u32, f32)>>, u64), String> {
        let mut answers = Vec::with_capacity(queries);
        let mut pages_read = 0u64;
        for q in &query_vecs {
            let mut dist = FlatDistance::new(&store, q, Metric::L2)
                .map_err(|e| format!("distance setup failed: {e}"))?;
            let out = index.search_paged(&mut dist, 10, 32);
            pages_read += out.stats.pages_read;
            answers.push(out.results.iter().map(|c| (c.id, c.dist)).collect());
        }
        Ok((answers, pages_read))
    };

    let (baseline, cold_page_reads) = run_pass(&plain)?;
    let (cold_cached, _) = run_pass(&cached)?; // populates the cache
    let (warm_cached, warm_page_reads) = run_pass(&cached)?;
    for (label, answers) in [("cold", &cold_cached), ("warm", &warm_cached)] {
        if answers != &baseline {
            return Err(format!(
                "engine smoke failed: {label}-cache paged answers diverge from \
                 the uncached baseline — the cache must never change results"
            ));
        }
    }
    let reduction = cold_page_reads as f64 / (warm_page_reads.max(1)) as f64;
    if reduction < MIN_CACHE_REDUCTION {
        return Err(format!(
            "engine smoke failed: warm page cache read {warm_page_reads} distinct \
             pages vs {cold_page_reads} uncached ({reduction:.2}x reduction, \
             below the {MIN_CACHE_REDUCTION}x gate)"
        ));
    }
    Ok((cold_page_reads, warm_page_reads))
}

/// The instrument self-checks behind the CI smoke gate: every engine
/// metric wired in this refactor must have actually recorded.
fn verify_instruments(snapshot: &mqa_obs::Snapshot) -> Result<(), String> {
    let mut missing = Vec::new();
    match snapshot.counter("engine.query.submitted") {
        Some(v) if v > 0 => {}
        _ => missing.push("counter `engine.query.submitted` missing or zero".to_string()),
    }
    match snapshot.histogram("engine.query.latency_us") {
        Some(h) if h.count > 0 => {}
        _ => missing.push("histogram `engine.query.latency_us` missing or empty".to_string()),
    }
    let worker_jobs: u64 = (0..WORKERS)
        .filter_map(|i| snapshot.counter(&format!("engine.worker.{i}.jobs")))
        .sum();
    if worker_jobs == 0 {
        missing.push("per-worker `engine.worker.<i>.jobs` counters all zero".to_string());
    }
    if snapshot
        .gauges
        .iter()
        .all(|g| g.name != "engine.pool.queue_depth")
    {
        missing.push("gauge `engine.pool.queue_depth` never set".to_string());
    }
    match snapshot.counter("cache.page.hits") {
        Some(v) if v > 0 => {}
        _ => missing.push("counter `cache.page.hits` missing or zero".to_string()),
    }
    match snapshot.counter("cache.page.misses") {
        Some(v) if v > 0 => {}
        _ => missing.push("counter `cache.page.misses` missing or zero".to_string()),
    }
    match snapshot.histogram("cache.page.lookup_us") {
        Some(h) if h.count > 0 => {}
        _ => missing.push("histogram `cache.page.lookup_us` missing or empty".to_string()),
    }
    if snapshot
        .gauges
        .iter()
        .all(|g| g.name != "cache.page.hit_rate")
    {
        missing.push("gauge `cache.page.hit_rate` never set".to_string());
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("engine smoke failed:\n  {}", missing.join("\n  ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_and_writes_metrics() {
        let _serial = crate::scenario_lock();
        let dir =
            std::env::temp_dir().join(format!("mqa-xtask-engine-test-{}", std::process::id()));
        let outcome = run(&dir, 42).expect("engine gate must pass on a healthy tree");
        assert_eq!(outcome.identical_answers, 12);
        assert!(
            outcome.speedup >= MIN_SPEEDUP,
            "speedup {:.2} below gate",
            outcome.speedup
        );
        assert!(outcome.jobs_executed > 0);
        assert!(
            outcome.witness_pairs >= 1,
            "the lock witness must record at least one acquisition pair"
        );
        assert!(
            outcome.cache_read_reduction >= MIN_CACHE_REDUCTION,
            "warm cache reduction {:.2}x below gate ({} cold vs {} warm reads)",
            outcome.cache_read_reduction,
            outcome.cold_page_reads,
            outcome.warm_page_reads
        );
        let body = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics readable");
        assert!(body.contains("engine.query.latency_us"));
        assert!(
            body.contains("engine.lockwitness."),
            "witness counters must land in the metrics snapshot"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
