//! Static concurrency analysis (`mqa-xtask conc`).
//!
//! A token-level pass over the workspace sources (via [`crate::rustlex`])
//! that understands just enough Rust structure to check three properties
//! without a compiler front-end:
//!
//! 1. **Lock ordering** — every acquisition of a `Mutex` / `RwLock` /
//!    `TracedMutex` *field* is resolved to a canonical lock name (the
//!    `TracedMutex::new("…")` literal when one exists, else
//!    `Struct.field` / `static.NAME`). Acquiring lock `B` while a guard
//!    of lock `A` is live adds the edge `A -> B` to a global lock-order
//!    graph; any edge on a cycle (including self-loops — std mutexes are
//!    not reentrant) is reported as [`Rule::LockOrderCycle`] with both
//!    acquisition sites.
//! 2. **Condvar predicate loops** — a `wait`-family call that consumes a
//!    live tracked guard must have an enclosing `loop` / `while` / `for`
//!    inside its function, or it is a spurious-wakeup bug
//!    ([`Rule::CondvarNoLoop`]). Wait *wrappers* (functions that receive
//!    the guard as a parameter, like `TracedMutex::wait`) are exempt
//!    automatically: parameters are not tracked acquisitions.
//! 3. **Guards across blocking calls** — a live guard at a blocking call
//!    site (`.join()`, `thread::sleep`, `Ticket::wait`'s empty-arg
//!    `.wait()`, `BoundedQueue::{push,pop}`, or a condvar wait on a
//!    *different* lock) stalls every thread needing that lock
//!    ([`Rule::GuardAcrossBlocking`]).
//!
//! Guard tracking is deliberately conservative: a guard binding is only
//! recorded when the acquisition is the *entire* right-hand side of a
//! `let` (`let g = x.lock();`) — optionally followed by a poison-adapter
//! chain (`.unwrap()` / `.expect(…)` / `.unwrap_or_else(…)`), which
//! returns the same guard — so chained temporaries
//! (`x.lock().map_err(…)?`, `x.lock().map(…)`) never produce long-lived
//! phantom guards.
//! Guards die at `drop(g)`, at the closing brace of their scope, and
//! test code (`#[cfg(test)]`) is masked out entirely.
//!
//! Findings reuse the [`crate::lint`] `Finding`/`Rule` types and the same
//! baseline-waiver machinery (default baseline: `conc-baseline.toml`).

use crate::baseline::Baseline;
use crate::lint::{collect_rs_files, strip, test_mask, Finding, Rule, DEFAULT_ROOTS};
use crate::rustlex::{lex, Kind, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// What a lock-ish struct field or static is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldKind {
    /// `Mutex<T>` or `TracedMutex<T>`: acquired via `.lock()` or a
    /// guard-returning helper.
    Lock,
    /// `RwLock<T>`: acquired via `.read()` / `.write()`.
    Rw,
    /// `Condvar`.
    Condvar,
    /// `BoundedQueue<T>`: `.push(` / `.pop(` on it blocks.
    Channel,
}

/// The workspace-wide symbol index built by pass 1.
#[derive(Debug, Default)]
struct Index {
    /// `(struct, field)` -> kind, for every lock-ish field.
    fields: BTreeMap<(String, String), FieldKind>,
    /// field name -> structs declaring it (global-unique fallback for
    /// nested receivers like `self.shared.slot`).
    by_field: BTreeMap<String, BTreeSet<String>>,
    /// `(struct, field)` -> `TracedMutex::new` name literal.
    traced: BTreeMap<(String, String), String>,
    /// `static NAME: Mutex<…>` items.
    statics: BTreeMap<String, FieldKind>,
    /// Guard-returning acquisition helpers (first param `&Mutex`-ish,
    /// return type contains `MutexGuard` / `TracedGuard`).
    helpers: BTreeSet<String>,
}

/// One `A -> B` acquisition-order edge with both sites.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired while `from` was held.
    pub to: String,
    /// File of the `to` acquisition.
    pub file: String,
    /// Line of the `to` acquisition.
    pub line: usize,
    /// File where `from` was acquired.
    pub from_file: String,
    /// Line where `from` was acquired.
    pub from_line: usize,
    /// Trimmed source line of the `to` acquisition.
    pub excerpt: String,
}

/// The full analysis result, before baseline waivers.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All rule violations, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// The global lock-order graph (deduplicated edges).
    pub edges: Vec<LockEdge>,
    /// Every canonical lock name that was acquired somewhere.
    pub lock_names: BTreeSet<String>,
    /// The `TracedMutex::new("…")` name literals found in non-test code.
    pub traced_names: BTreeSet<String>,
}

/// Condvar-family call names. Deliberately exact (not a `wait*` prefix):
/// scheduler-style wrappers like `wait_for_grant` must not be forced
/// into predicate loops.
const WAIT_NAMES: [&str; 5] = [
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "wait_ignore_poison",
];

fn is_wait_name(name: &str) -> bool {
    WAIT_NAMES.contains(&name)
}

/// Index of the `)` matching the `(` at `open`, honoring nesting.
pub(crate) fn matching_paren(toks: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index just past a generics block starting at `i` (which must be `<`),
/// counting `<<`/`>>` as two. Returns `i` unchanged if `toks[i]` is not `<`.
pub(crate) fn skip_angles(toks: &[&Tok], i: usize) -> usize {
    if !toks.get(i).is_some_and(|t| t.is_punct("<")) {
        return i;
    }
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        let t = toks[j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">>") {
            depth -= 2;
        }
        j += 1;
        if depth <= 0 {
            return j;
        }
    }
    j
}

/// Per-token innermost `impl` type name, so `self.field` resolves.
fn impl_map(toks: &[&Tok]) -> Vec<Option<String>> {
    let mut out: Vec<Option<String>> = vec![None; toks.len()];
    let mut depth = 0i64;
    let mut stack: Vec<(String, i64)> = Vec::new();
    let mut pending: Option<String> = None;
    for i in 0..toks.len() {
        let t = toks[i];
        if t.is_ident("impl") {
            pending = impl_type_name(toks, i);
        } else if t.is_punct("{") {
            if let Some(name) = pending.take() {
                stack.push((name, depth));
            }
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if stack.last().map(|s| s.1) == Some(depth) {
                stack.pop();
            }
        } else if t.is_punct(";") {
            // `impl Trait for Type;` never happens, but a parse hiccup
            // must not leak `pending` into an unrelated brace.
            pending = None;
        }
        out[i] = stack.last().map(|s| s.0.clone());
    }
    out
}

/// The implemented type's last path segment for the `impl` at `at`.
pub(crate) fn impl_type_name(toks: &[&Tok], at: usize) -> Option<String> {
    let mut j = skip_angles(toks, at + 1);
    // If a top-level `for` appears before the body brace, the type
    // follows it (`impl Drop for TicketSender<T>`).
    let mut k = j;
    let mut angle = 0i64;
    while k < toks.len() {
        let t = toks[k];
        if t.is_punct("{") || t.is_ident("where") {
            break;
        }
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("<<") {
            angle += 2;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if angle == 0 && t.is_ident("for") {
            j = k + 1;
        }
        k += 1;
    }
    // Skip `&`, `mut`, lifetimes; then take the last ident of the
    // `::`-separated path before its generics.
    let mut name = None;
    let mut m = j;
    while m < toks.len() {
        let t = toks[m];
        if t.is_punct("&") || t.is_ident("mut") || t.kind == Kind::Lifetime || t.is_punct("::") {
            m += 1;
            continue;
        }
        if t.kind == Kind::Ident && !t.is_ident("where") {
            name = Some(t.text.clone());
            m += 1;
            // Path continues only through `::`.
            if toks.get(m).is_some_and(|t| t.is_punct("::")) {
                continue;
            }
        }
        break;
    }
    name
}

fn classify_type(toks: &[&Tok]) -> Option<FieldKind> {
    let has = |s: &str| toks.iter().any(|t| t.is_ident(s));
    if has("TracedMutex") || has("Mutex") {
        Some(FieldKind::Lock)
    } else if has("RwLock") {
        Some(FieldKind::Rw)
    } else if has("Condvar") {
        Some(FieldKind::Condvar)
    } else if has("BoundedQueue") {
        Some(FieldKind::Channel)
    } else {
        None
    }
}

/// Pass 1: structs' lock-ish fields, statics, guard helpers, and
/// `TracedMutex::new("…")` field-name associations.
fn index_file(toks: &[&Tok], imap: &[Option<String>], idx: &mut Index) {
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        // struct Name { field: Type, … }
        if t.is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) {
            let name = toks[i + 1].text.clone();
            let mut j = skip_angles(toks, i + 2);
            while j < toks.len()
                && !toks[j].is_punct("{")
                && !toks[j].is_punct("(")
                && !toks[j].is_punct(";")
            {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                let mut depth = 1i64;
                let mut k = j + 1;
                let mut chunk_start = k;
                while k < toks.len() && depth > 0 {
                    let tk = toks[k];
                    if tk.is_punct("{") || tk.is_punct("(") || tk.is_punct("[") {
                        depth += 1;
                    } else if tk.is_punct("}") || tk.is_punct(")") || tk.is_punct("]") {
                        depth -= 1;
                    }
                    let field_ends = depth == 0 || (depth == 1 && tk.is_punct(","));
                    if field_ends {
                        record_field(&toks[chunk_start..k], &name, idx);
                        chunk_start = k + 1;
                    }
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        // static NAME: Mutex<…> = …;
        if t.is_ident("static") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == Kind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct(":"))
            {
                let name = toks[j].text.clone();
                let ty_start = j + 2;
                let mut k = ty_start;
                while k < toks.len() && !toks[k].is_punct("=") && !toks[k].is_punct(";") {
                    k += 1;
                }
                if let Some(kind) = classify_type(&toks[ty_start..k]) {
                    idx.statics.insert(name, kind);
                }
            }
        }
        // fn name(first: &Mutex<…>, …) -> …Guard…  => acquisition helper.
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) {
            let name = toks[i + 1].text.clone();
            let j = skip_angles(toks, i + 2);
            if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                if let Some(close) = matching_paren(toks, j) {
                    let params = &toks[j + 1..close];
                    let first_param_end = {
                        let mut depth = 0i64;
                        let mut e = params.len();
                        for (p, tk) in params.iter().enumerate() {
                            if tk.is_punct("(") || tk.is_punct("[") || tk.is_punct("<") {
                                depth += 1;
                            } else if tk.is_punct(")") || tk.is_punct("]") || tk.is_punct(">") {
                                depth -= 1;
                            } else if depth == 0 && tk.is_punct(",") {
                                e = p;
                                break;
                            }
                        }
                        e
                    };
                    let first = &params[..first_param_end];
                    let takes_lock = first
                        .iter()
                        .any(|t| t.is_ident("Mutex") || t.is_ident("TracedMutex"))
                        && !first.iter().any(|t| t.is_ident("MutexGuard"));
                    if takes_lock && toks.get(close + 1).is_some_and(|t| t.is_punct("->")) {
                        let mut k = close + 2;
                        let mut returns_guard = false;
                        while k < toks.len()
                            && !toks[k].is_punct("{")
                            && !toks[k].is_punct(";")
                            && !toks[k].is_ident("where")
                        {
                            if toks[k].is_ident("MutexGuard") || toks[k].is_ident("TracedGuard") {
                                returns_guard = true;
                            }
                            k += 1;
                        }
                        if returns_guard {
                            idx.helpers.insert(name);
                        }
                    }
                }
            }
        }
        // field: TracedMutex::new("name", …) — associate literal to field.
        if t.kind == Kind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("TracedMutex"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("new"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 6).is_some_and(|t| t.kind == Kind::Str)
        {
            let field = t.text.clone();
            let literal = toks[i + 6].text.clone();
            let ctx = imap.get(i).cloned().flatten();
            // Resolved after all files are indexed (the declaring struct
            // may not be indexed yet); stash under a sentinel key the
            // resolver understands.
            let ctx_key = ctx.unwrap_or_default();
            idx.traced.insert((ctx_key, field), literal);
        }
        i += 1;
    }
}

fn record_field(chunk: &[&Tok], struct_name: &str, idx: &mut Index) {
    // Skip attributes and visibility: #[…] / pub / pub(crate).
    let mut i = 0;
    while i < chunk.len() {
        let t = chunk[i];
        if t.is_punct("#") {
            // Skip the bracket group.
            let mut depth = 0i64;
            i += 1;
            while i < chunk.len() {
                if chunk[i].is_punct("[") {
                    depth += 1;
                } else if chunk[i].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
            continue;
        }
        if t.is_ident("pub") {
            i += 1;
            if chunk.get(i).is_some_and(|t| t.is_punct("(")) {
                let mut depth = 0i64;
                while i < chunk.len() {
                    if chunk[i].is_punct("(") {
                        depth += 1;
                    } else if chunk[i].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            continue;
        }
        break;
    }
    if chunk.get(i).is_some_and(|t| t.kind == Kind::Ident)
        && chunk.get(i + 1).is_some_and(|t| t.is_punct(":"))
    {
        let field = chunk[i].text.clone();
        if let Some(kind) = classify_type(&chunk[i + 2..]) {
            idx.fields
                .insert((struct_name.to_string(), field.clone()), kind);
            idx.by_field
                .entry(field)
                .or_default()
                .insert(struct_name.to_string());
        }
    }
}

impl Index {
    /// Resolves a receiver path (`["self", "state"]`, `["PAIRS"]`, …) to
    /// a `(canonical_name, kind)` under the impl context `ctx`.
    fn resolve(&self, path: &[String], ctx: Option<&str>) -> Option<(String, FieldKind)> {
        match path {
            [] => None,
            [single] => self
                .statics
                .get(single)
                .map(|&k| (format!("static.{single}"), k)),
            _ => {
                let field = path.last()?;
                let strukt = if path.len() == 2 && path[0] == "self" {
                    let c = ctx?;
                    if self.fields.contains_key(&(c.to_string(), field.clone())) {
                        Some(c.to_string())
                    } else {
                        None
                    }
                } else {
                    None
                };
                let strukt = strukt.or_else(|| {
                    let owners = self.by_field.get(field)?;
                    if owners.len() == 1 {
                        owners.iter().next().cloned()
                    } else {
                        None
                    }
                })?;
                let kind = *self.fields.get(&(strukt.clone(), field.clone()))?;
                Some((self.canonical(&strukt, field), kind))
            }
        }
    }

    /// The canonical display name for a `(struct, field)` lock: the
    /// `TracedMutex::new` literal when one was found, else `Struct.field`.
    fn canonical(&self, strukt: &str, field: &str) -> String {
        if let Some(name) = self.traced.get(&(strukt.to_string(), field.to_string())) {
            return name.clone();
        }
        // Initializer seen outside an impl (free constructor fn): keyed
        // under the empty context if the field is globally unique.
        if let Some(name) = self.traced.get(&(String::new(), field.to_string())) {
            if self.by_field.get(field).is_some_and(|o| o.len() == 1) {
                return name.clone();
            }
        }
        format!("{strukt}.{field}")
    }
}

/// A tracked live guard.
#[derive(Debug, Clone)]
struct GuardVar {
    var: String,
    /// Canonical lock name, when the receiver resolved.
    lock: Option<String>,
    line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Fn,
    Loop,
    Plain,
}

struct Scope {
    kind: ScopeKind,
    guards: Vec<GuardVar>,
}

/// The receiver path of the method call whose `.` is at `dot`:
/// `self.shared.slot.lock()` -> `["self", "shared", "slot"]`. Empty when
/// the receiver is a chained call or other non-path expression.
pub(crate) fn receiver_path(toks: &[&Tok], dot: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 || !toks[j].is_punct(".") {
            break;
        }
        let prev = toks[j - 1];
        if prev.kind != Kind::Ident {
            // `foo().lock()` or `map[k].lock()`: give up.
            return Vec::new();
        }
        segs.push(prev.text.clone());
        if j >= 2 && toks[j - 2].is_punct(".") {
            j -= 2;
            continue;
        }
        break;
    }
    segs.reverse();
    segs
}

/// The `&`-stripped path of a helper call's first argument:
/// `lock_ignore_poison(&self.inner)` -> `["self", "inner"]`.
fn arg_path(args: &[&Tok]) -> Vec<String> {
    let mut i = 0;
    while args
        .get(i)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
    {
        i += 1;
    }
    let mut segs = Vec::new();
    while i < args.len() {
        let t = args[i];
        if t.kind == Kind::Ident {
            segs.push(t.text.clone());
            i += 1;
            if args
                .get(i)
                .is_some_and(|t| t.is_punct(".") || t.is_punct("::"))
            {
                i += 1;
                continue;
            }
            if i < args.len() && !args[i].is_punct(",") {
                // Trailing tokens mean the arg is a bigger expression.
                return Vec::new();
            }
            break;
        }
        return Vec::new();
    }
    segs
}

struct FileCtx<'a> {
    rel: &'a str,
    raw_lines: Vec<&'a str>,
}

impl FileCtx<'_> {
    fn excerpt(&self, line: usize) -> String {
        self.raw_lines
            .get(line - 1)
            .map_or(String::new(), |l| l.trim().to_string())
    }
}

/// Pass 2 over one file: track scopes + guards, record edges and per-site
/// findings.
fn analyze_file(
    ctx: &FileCtx<'_>,
    toks: &[&Tok],
    imap: &[Option<String>],
    idx: &Index,
    out: &mut Analysis,
) {
    let mut scopes: Vec<Scope> = vec![Scope {
        kind: ScopeKind::Plain,
        guards: Vec::new(),
    }];
    let mut pending_fn = false;
    let mut pending_loop = false;
    let mut pending_let: Option<String> = None;
    let mut edges: BTreeSet<LockEdge> = out.edges.iter().cloned().collect();

    let live_guards = |scopes: &[Scope]| -> Vec<GuardVar> {
        scopes
            .iter()
            .flat_map(|s| s.guards.iter().cloned())
            .collect()
    };

    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if t.is_punct("{") {
            let kind = if pending_fn {
                ScopeKind::Fn
            } else if pending_loop {
                ScopeKind::Loop
            } else {
                ScopeKind::Plain
            };
            pending_fn = false;
            pending_loop = false;
            scopes.push(Scope {
                kind,
                guards: Vec::new(),
            });
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            if scopes.len() > 1 {
                scopes.pop();
            }
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            pending_let = None;
            pending_fn = false;
            pending_loop = false;
            i += 1;
            continue;
        }
        if t.kind == Kind::Ident {
            match t.text.as_str() {
                "fn" => pending_fn = true,
                "loop" | "while" | "for" => pending_loop = true,
                "let" => {
                    let mut j = i + 1;
                    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.kind == Kind::Ident) {
                        pending_let = Some(toks[j].text.clone());
                    } else {
                        pending_let = None;
                    }
                }
                "drop"
                    if toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                        && toks.get(i + 2).is_some_and(|t| t.kind == Kind::Ident)
                        && toks.get(i + 3).is_some_and(|t| t.is_punct(")")) =>
                {
                    let var = &toks[i + 2].text;
                    for scope in scopes.iter_mut().rev() {
                        if let Some(pos) = scope.guards.iter().rposition(|g| &g.var == var) {
                            scope.guards.remove(pos);
                            break;
                        }
                    }
                    i += 4;
                    continue;
                }
                _ => {}
            }
            // Call sites: `name(` — method when preceded by `.`.
            if toks.get(i + 1).is_some_and(|t| t.is_punct("(")) && !t.is_ident("fn") {
                let prev_is_dot = i > 0 && toks[i - 1].is_punct(".");
                let prev_is_fn = i > 0 && toks[i - 1].is_ident("fn");
                if !prev_is_fn {
                    let close = matching_paren(toks, i + 1);
                    if let Some(close) = close {
                        let args = &toks[i + 2..close];
                        let name = t.text.as_str();
                        let line = t.line;
                        let ictx = imap.get(i).cloned().flatten();

                        let live = live_guards(&scopes);
                        let guard_args: Vec<String> = args
                            .iter()
                            .filter(|a| {
                                a.kind == Kind::Ident && live.iter().any(|g| g.var == a.text)
                            })
                            .map(|a| a.text.clone())
                            .collect();

                        let mut acquisition: Option<(Option<String>, usize)> = None;
                        let mut blocking: Option<&str> = None;
                        let mut wait_site = false;

                        if prev_is_dot {
                            let recv = receiver_path(toks, i - 1);
                            let resolved = idx.resolve(&recv, ictx.as_deref());
                            match name {
                                "lock" if args.is_empty() => {
                                    acquisition = Some((resolved.map(|(n, _)| n), close));
                                }
                                "read" | "write" if args.is_empty() => {
                                    if let Some((n, FieldKind::Rw)) = resolved {
                                        acquisition = Some((Some(n), close));
                                    }
                                }
                                "join" if args.is_empty() => blocking = Some("join()"),
                                "wait" if args.is_empty() => blocking = Some("Ticket::wait()"),
                                "push" | "pop" => {
                                    if let Some((_, FieldKind::Channel)) = resolved {
                                        blocking = Some("BoundedQueue push/pop");
                                    }
                                }
                                _ if is_wait_name(name) && !guard_args.is_empty() => {
                                    wait_site = true;
                                }
                                _ => {}
                            }
                        } else {
                            if idx.helpers.contains(name) {
                                let resolved = idx.resolve(&arg_path(args), ictx.as_deref());
                                acquisition = Some((resolved.map(|(n, _)| n), close));
                            } else if name == "sleep" {
                                blocking = Some("sleep()");
                            } else if is_wait_name(name) && !guard_args.is_empty() {
                                wait_site = true;
                            }
                        }

                        if let Some((lock, close)) = acquisition {
                            // Lock-order edges: new lock vs. every live
                            // resolved guard.
                            if let Some(to) = &lock {
                                out.lock_names.insert(to.clone());
                                for g in &live {
                                    if let Some(from) = &g.lock {
                                        edges.insert(LockEdge {
                                            from: from.clone(),
                                            to: to.clone(),
                                            file: ctx.rel.to_string(),
                                            line,
                                            from_file: ctx.rel.to_string(),
                                            from_line: g.line,
                                            excerpt: ctx.excerpt(line),
                                        });
                                    }
                                }
                            }
                            // Bind when the acquisition is the whole RHS of
                            // a `let`, modulo a trailing poison-adapter
                            // chain (`.unwrap()` / `.expect(…)` /
                            // `.unwrap_or_else(…)`): those return the same
                            // guard, so `let g = m.lock().unwrap_or_else(…);`
                            // is a real long-lived acquisition, not a
                            // dropped temporary.
                            let mut end = close;
                            while toks.get(end + 1).is_some_and(|t| t.is_punct("."))
                                && toks.get(end + 2).is_some_and(|t| {
                                    t.is_ident("unwrap")
                                        || t.is_ident("expect")
                                        || t.is_ident("unwrap_or_else")
                                })
                                && toks.get(end + 3).is_some_and(|t| t.is_punct("("))
                            {
                                match matching_paren(toks, end + 3) {
                                    Some(c2) => end = c2,
                                    None => break,
                                }
                            }
                            let ends_stmt = toks.get(end + 1).is_some_and(|t| t.is_punct(";"));
                            if ends_stmt {
                                if let Some(var) = pending_let.take() {
                                    if let Some(scope) = scopes.last_mut() {
                                        scope.guards.push(GuardVar { var, lock, line });
                                    }
                                }
                            }
                            i = close + 1;
                            continue;
                        }

                        if wait_site {
                            // Rule: the wait must sit inside a loop within
                            // its function.
                            let mut in_loop = false;
                            for scope in scopes.iter().rev() {
                                if scope.kind == ScopeKind::Fn {
                                    break;
                                }
                                if scope.kind == ScopeKind::Loop {
                                    in_loop = true;
                                    break;
                                }
                            }
                            if !in_loop {
                                out.findings.push(Finding {
                                    file: ctx.rel.to_string(),
                                    line,
                                    rule: Rule::CondvarNoLoop,
                                    excerpt: ctx.excerpt(line),
                                });
                            }
                            // Other guards held across the wait block
                            // every thread needing them.
                            for g in &live {
                                if !guard_args.contains(&g.var) {
                                    out.findings.push(Finding {
                                        file: ctx.rel.to_string(),
                                        line,
                                        rule: Rule::GuardAcrossBlocking,
                                        excerpt: format!(
                                            "{} [guard `{}` from line {} held across condvar wait]",
                                            ctx.excerpt(line),
                                            g.var,
                                            g.line
                                        ),
                                    });
                                }
                            }
                        } else if let Some(what) = blocking {
                            for g in &live {
                                out.findings.push(Finding {
                                    file: ctx.rel.to_string(),
                                    line,
                                    rule: Rule::GuardAcrossBlocking,
                                    excerpt: format!(
                                        "{} [guard `{}` from line {} held across blocking {}]",
                                        ctx.excerpt(line),
                                        g.var,
                                        g.line,
                                        what
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out.edges = edges.into_iter().collect();
}

/// Runs the analysis over in-memory `(repo-relative path, source)` pairs.
/// The unit tests and the engine gate's cross-validation both enter here.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let mut prepped: Vec<(String, Vec<Tok>, Vec<bool>)> = Vec::new();
    for (rel, source) in files {
        let mask = test_mask(&strip(source));
        let toks = lex(source);
        prepped.push((rel.clone(), toks, mask));
    }

    let mut idx = Index::default();
    let mut filtered: Vec<(usize, Vec<&Tok>)> = Vec::new();
    for (fi, (_, toks, mask)) in prepped.iter().enumerate() {
        let kept: Vec<&Tok> = toks
            .iter()
            .filter(|t| !mask.get(t.line - 1).copied().unwrap_or(false))
            .collect();
        filtered.push((fi, kept));
    }
    // Pass 1: the index needs every file before pass 2 can resolve
    // cross-file receivers.
    let imaps: Vec<Vec<Option<String>>> = filtered.iter().map(|(_, kept)| impl_map(kept)).collect();
    for ((_, kept), imap) in filtered.iter().zip(&imaps) {
        index_file(kept, imap, &mut idx);
    }

    let mut out = Analysis::default();
    for name in idx.traced.values() {
        out.traced_names.insert(name.clone());
    }

    // Pass 2.
    for ((fi, kept), imap) in filtered.iter().zip(&imaps) {
        let (rel, _, _) = &prepped[*fi];
        let source = &files[*fi].1;
        let ctx = FileCtx {
            rel,
            raw_lines: source.lines().collect(),
        };
        analyze_file(&ctx, kept, imap, &idx, &mut out);
    }

    // Cycle pass over the global graph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &out.edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for e in &out.edges {
        if reaches(&e.to, &e.from) {
            out.findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: Rule::LockOrderCycle,
                excerpt: format!(
                    "{} [acquires `{}` while holding `{}` (held since {}:{}); \
                     `{}` -> … -> `{}` closes an order cycle]",
                    e.excerpt, e.to, e.from, e.from_file, e.from_line, e.from, e.to
                ),
            });
        }
    }

    out.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });
    out
}

/// The conc run's aggregate result (mirror of `lint::LintOutcome`).
#[derive(Debug)]
pub struct ConcOutcome {
    /// Unwaived findings (the gate fails if non-empty).
    pub findings: Vec<Finding>,
    /// Findings suppressed by baseline waivers.
    pub waived: Vec<Finding>,
    /// Baseline entries that matched nothing (stale waivers fail the gate).
    pub unused_waivers: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// The lock-order graph and lock-name inventory, for the engine
    /// gate's runtime-witness cross-check.
    pub analysis: Analysis,
}

impl ConcOutcome {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_waivers.is_empty()
    }
}

fn load_workspace_sources(repo_root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for root in DEFAULT_ROOTS {
        let dir = repo_root.join(root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs sources found under {} (looked in {})",
            repo_root.display(),
            DEFAULT_ROOTS.join(", ")
        ));
    }
    files.sort();
    let mut out = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        out.push((rel, source));
    }
    Ok(out)
}

/// Runs the static concurrency analysis over the whole workspace,
/// applying `baseline` waivers (default file: `conc-baseline.toml`).
///
/// # Errors
/// Returns a message if a directory or file cannot be read.
pub fn run(repo_root: &Path, baseline: &Baseline) -> Result<ConcOutcome, String> {
    let sources = load_workspace_sources(repo_root)?;
    let files_scanned = sources.len();
    let mut analysis = analyze_sources(&sources);
    let all = std::mem::take(&mut analysis.findings);
    let mut used = vec![0usize; baseline.waivers.len()];
    let mut findings = Vec::new();
    let mut waived = Vec::new();
    for f in all {
        let hit = baseline.matching(&f).next();
        match hit {
            Some(i) => {
                used[i] += 1;
                waived.push(f);
            }
            None => findings.push(f),
        }
    }
    let unused_waivers = baseline
        .waivers
        .iter()
        .zip(&used)
        .filter(|(_, &u)| u == 0)
        .map(|(w, _)| w.describe())
        .collect();
    Ok(ConcOutcome {
        findings,
        waived,
        unused_waivers,
        files_scanned,
        analysis,
    })
}

/// Convenience wrapper for the engine gate: workspace analysis with no
/// baseline applied, exposing the lock graph and traced-name inventory.
///
/// # Errors
/// Returns a message if the workspace sources cannot be read.
pub fn analyze_workspace(repo_root: &Path) -> Result<Analysis, String> {
    let sources = load_workspace_sources(repo_root)?;
    Ok(analyze_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, src: &str) -> Analysis {
        analyze_sources(&[(rel.to_string(), src.to_string())])
    }

    const AB_BA: &str = r#"
use std::sync::Mutex;
struct Pair { alpha: Mutex<u32>, beta: Mutex<u32> }
impl Pair {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
    fn ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
"#;

    #[test]
    fn ab_ba_inversion_reports_cycle_on_both_edges() {
        let a = one("x/src/pair.rs", AB_BA);
        assert_eq!(a.edges.len(), 2, "edges: {:?}", a.edges);
        let cycles: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LockOrderCycle)
            .collect();
        assert_eq!(cycles.len(), 2, "findings: {:?}", a.findings);
        assert_eq!(cycles[0].line, 7);
        assert_eq!(cycles[1].line, 13);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
use std::sync::Mutex;
struct Pair { alpha: Mutex<u32>, beta: Mutex<u32> }
impl Pair {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
    fn ab_again(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
}
"#;
        let a = one("x/src/pair.rs", src);
        assert!(
            a.edges
                .iter()
                .all(|e| e.from == "Pair.alpha" && e.to == "Pair.beta"),
            "edges: {:?}",
            a.edges
        );
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn self_reacquire_is_a_cycle() {
        let src = r#"
use std::sync::Mutex;
struct S { m: Mutex<u32> }
impl S {
    fn f(&self) {
        let a = self.m.lock();
        let b = self.m.lock();
        drop(b);
        drop(a);
    }
}
"#;
        let a = one("x/src/s.rs", src);
        let cycles: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LockOrderCycle)
            .collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].line, 7);
    }

    #[test]
    fn if_guarded_condvar_wait_fires_and_looped_wait_does_not() {
        let src = r#"
use std::sync::{Condvar, Mutex};
struct S { m: Mutex<bool>, cv: Condvar }
impl S {
    fn bad(&self) {
        let mut g = self.m.lock();
        if !*g {
            g = self.cv.wait(g);
        }
    }
    fn good(&self) {
        let mut g = self.m.lock();
        while !*g {
            g = self.cv.wait(g);
        }
    }
}
"#;
        let a = one("x/src/s.rs", src);
        let waits: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CondvarNoLoop)
            .collect();
        assert_eq!(waits.len(), 1, "findings: {:?}", a.findings);
        assert_eq!(waits[0].line, 8);
    }

    #[test]
    fn guard_across_join_fires() {
        let src = r#"
use std::sync::Mutex;
struct S { m: Mutex<u32> }
impl S {
    fn f(&self, h: std::thread::JoinHandle<()>) {
        let g = self.m.lock();
        h.join();
        drop(g);
    }
}
"#;
        let a = one("x/src/s.rs", src);
        let hits: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::GuardAcrossBlocking)
            .collect();
        assert_eq!(hits.len(), 1, "findings: {:?}", a.findings);
        assert_eq!(hits[0].line, 7);
        assert!(hits[0].excerpt.contains("`g`"));
    }

    #[test]
    fn guard_dropped_before_join_is_clean() {
        let src = r#"
use std::sync::Mutex;
struct S { m: Mutex<u32> }
impl S {
    fn f(&self, h: std::thread::JoinHandle<()>) {
        { let g = self.m.lock(); drop(g); }
        h.join();
    }
}
"#;
        let a = one("x/src/s.rs", src);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn poison_adapter_chain_still_tracks_the_guard() {
        // `.lock().unwrap_or_else(…)` returns the same guard, so holding
        // it across a join() must still fire — the chain is not a
        // dropped temporary.
        let src = r#"
use std::sync::Mutex;
struct S { m: Mutex<u32> }
impl S {
    fn f(&self, h: std::thread::JoinHandle<()>) {
        let g = self.m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        h.join();
        drop(g);
    }
}
"#;
        let a = one("x/src/s.rs", src);
        let hits: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::GuardAcrossBlocking)
            .collect();
        assert_eq!(hits.len(), 1, "findings: {:?}", a.findings);
        assert!(hits[0].excerpt.contains("`g`"));
        assert!(a.lock_names.contains("S.m"));
    }

    #[test]
    fn workspace_inventory_covers_live_index_locks() {
        // The online-mutation refactor introduced two locks on the write
        // path: the snapshot cell's publication slot and the unified
        // index's single-writer mutex. Both must be inventoried under
        // their canonical names so the gate watches them — an empty
        // resolution here would mean mutation locking is invisible to
        // the cycle analysis.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let a = analyze_workspace(&root).expect("workspace sources readable");
        for name in ["SnapshotCell.slot", "UnifiedIndex.writer"] {
            assert!(
                a.lock_names.contains(name),
                "lock `{name}` missing from inventory: {:?}",
                a.lock_names
            );
        }
    }

    #[test]
    fn chained_temporaries_do_not_become_guards() {
        let src = r#"
use std::sync::Mutex;
struct S { m: Mutex<Vec<u32>> }
impl S {
    fn f(&self, h: std::thread::JoinHandle<()>) {
        let n = self.m.lock().map(|g| g.len());
        h.join();
    }
}
"#;
        let a = one("x/src/s.rs", src);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn traced_mutex_literal_becomes_canonical_name() {
        let src = r#"
struct Q { state: TracedMutex<u32> }
impl Q {
    fn new() -> Self {
        Self { state: TracedMutex::new("engine.q.state", 0) }
    }
    fn f(&self, h: std::thread::JoinHandle<()>) {
        let g = self.state.lock();
        h.join();
        drop(g);
    }
}
"#;
        let a = one("x/src/q.rs", src);
        assert!(a.traced_names.contains("engine.q.state"));
        assert!(a.lock_names.contains("engine.q.state"));
    }

    #[test]
    fn wait_wrapper_taking_guard_param_is_exempt() {
        // `raw` arrives as a parameter, not a tracked acquisition, so the
        // wrapper body needs no loop.
        let src = r#"
use std::sync::{Condvar, MutexGuard};
fn forward<'a, T>(cv: &Condvar, raw: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    wait_ignore_poison(cv, raw)
}
"#;
        let a = one("x/src/w.rs", src);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn helper_acquisition_resolves_static() {
        let src = r#"
use std::sync::{Mutex, MutexGuard};
static PAIRS: Mutex<Vec<u32>> = Mutex::new(Vec::new());
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
fn f(h: std::thread::JoinHandle<()>) {
    let g = lock_ignore_poison(&PAIRS);
    h.join();
    drop(g);
}
"#;
        let a = one("x/src/s.rs", src);
        let hits: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::GuardAcrossBlocking)
            .collect();
        assert_eq!(hits.len(), 1, "findings: {:?}", a.findings);
        assert!(a.lock_names.contains("static.PAIRS"));
    }

    #[test]
    fn test_code_is_masked() {
        let masked = format!("#[cfg(test)]\nmod tests {{\n{AB_BA}\n}}\n");
        let a = one("x/src/pair.rs", &masked);
        assert!(a.findings.is_empty());
        assert!(a.edges.is_empty());
    }

    #[test]
    fn cross_file_edges_join_one_graph() {
        let fwd = r#"
use std::sync::Mutex;
struct Pair { alpha: Mutex<u32>, beta: Mutex<u32> }
impl Pair {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
}
"#;
        let rev = r#"
fn ba(p: &crate::Pair) {
    let b = p.beta.lock();
    let a = p.alpha.lock();
    drop(a);
    drop(b);
}
"#;
        let a = analyze_sources(&[
            ("x/src/fwd.rs".to_string(), fwd.to_string()),
            ("x/src/rev.rs".to_string(), rev.to_string()),
        ]);
        let cycles = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LockOrderCycle)
            .count();
        assert_eq!(cycles, 2, "findings: {:?}", a.findings);
    }
}
