//! Shared two-pass call-graph machinery for whole-workspace analyses.
//!
//! [`crate::flow`] (panic-freedom) and [`crate::alloc`] (allocation-
//! freedom) are the same analysis shape instantiated with different site
//! scanners: pass 1 inventories every `fn` — impl/trait owner, parameter
//! arity, the calls its body makes, and the analysis-specific *sites*
//! inside it — and pass 2 resolves calls to candidate callees
//! (receiver-typed where a `self` field, typed local, or parameter type
//! is known; name + arity over-approximation otherwise, so `dyn Trait`
//! dispatch reaches every impl) and computes the cone from designated
//! entry points. This module owns the generic machinery; the analyses own
//! their [`Site`] kinds, scanners, entry-point sets, and reporting.

use crate::conc::{impl_type_name, matching_paren, receiver_path, skip_angles};
use crate::rustlex::{Kind, Tok};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Rust keywords that can precede `[` without being a value (so slice
/// patterns `let [a, b] = …` and array types/literals are not flagged as
/// indexing) and that never *are* a callee name.
const KEYWORDS: [&str; 35] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "trait", "true", "type",
    "where",
];

/// Whether `s` is a Rust keyword (see [`KEYWORDS`]).
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// One analysis-specific site (panic-capable, allocation-capable, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site<K> {
    /// What the construct is (analysis-owned kind enum).
    pub kind: K,
    /// 1-based source line.
    pub line: usize,
    /// Index of the triggering token in the scanned stream (used to
    /// attribute the site to its enclosing function).
    pub tok: usize,
}

/// Per-line mask from the *raw* source: `true` where a `// <keyword>`
/// comment on the same line or up to three lines above discharges a site
/// (the `// SAFETY:` idiom generalized — flow uses `INVARIANT:`, alloc
/// uses `ALLOC:`). A multi-line comment counts as a whole: the lines
/// continuing a discharge comment block are marked too, so the three-line
/// window is measured from the end of the comment, not its first line.
pub fn discharge_mask(source: &str, keyword: &str) -> Vec<bool> {
    let lines: Vec<&str> = source.lines().collect();
    let mut marked = vec![false; lines.len()];
    for i in 0..lines.len() {
        if lines[i].contains(keyword) {
            marked[i] = true;
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim_start().starts_with("//") {
                marked[j] = true;
                j += 1;
            }
        }
    }
    let mut mask = vec![false; lines.len()];
    for (i, slot) in mask.iter_mut().enumerate() {
        let lo = i.saturating_sub(3);
        *slot = marked[lo..=i].iter().any(|&m| m);
    }
    mask
}

// ---------------------------------------------------------------------------
// Pass 1: the function inventory.
// ---------------------------------------------------------------------------

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// `Type::name(…)` qualifier, `Self`, or a lowercase module segment.
    pub qualifier: Option<String>,
    /// `true` for `recv.name(…)` method syntax.
    pub method: bool,
    /// Receiver type candidates from typed locals/params.
    pub recv_hints: Vec<String>,
    /// `["self", "field"]`-style receiver path, for field-type lookup.
    pub recv_path: Vec<String>,
    /// Argument count (top-level commas + 1).
    pub args: usize,
}

/// One function in the inventory.
#[derive(Debug)]
pub struct FnNode<K> {
    /// Impl/trait owner's type name, `None` for free functions.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// Index into the analyzed file list.
    pub file: usize,
    /// Parameter count excluding `self`.
    pub arity: usize,
    /// Calls made by the body.
    pub calls: Vec<Call>,
    /// Analysis sites in the body.
    pub sites: Vec<Site<K>>,
}

impl<K> FnNode<K> {
    /// `Owner::name` display form.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Per-token innermost `impl`/`trait` owner name, plus the set of names
/// introduced by `trait` blocks (dyn-dispatch widening needs to know
/// which owners are traits).
fn owner_map(toks: &[&Tok]) -> (Vec<Option<String>>, BTreeSet<String>) {
    let mut out: Vec<Option<String>> = vec![None; toks.len()];
    let mut traits = BTreeSet::new();
    let mut depth = 0i64;
    let mut stack: Vec<(String, i64)> = Vec::new();
    let mut pending: Option<String> = None;
    for i in 0..toks.len() {
        let t = toks[i];
        if t.is_ident("impl") {
            pending = impl_type_name(toks, i);
        } else if t.is_ident("trait") && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) {
            let name = toks[i + 1].text.clone();
            traits.insert(name.clone());
            pending = Some(name);
        } else if t.is_punct("{") {
            if let Some(name) = pending.take() {
                stack.push((name, depth));
            }
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if stack.last().map(|s| s.1) == Some(depth) {
                stack.pop();
            }
        } else if t.is_punct(";") {
            pending = None;
        }
        out[i] = stack.last().map(|s| s.0.clone());
    }
    (out, traits)
}

/// Capitalized type names in a token slice, in order — the candidates a
/// field/local/param type resolves a method call against.
fn type_names(toks: &[&Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind == Kind::Ident
            && t.text.chars().next().is_some_and(char::is_uppercase)
            && !out.contains(&t.text)
        {
            out.push(t.text.clone());
        }
    }
    out
}

/// Counts top-level commas in a call's argument tokens, skipping
/// turbofish `::<…>` blocks.
fn count_args(args: &[&Tok]) -> usize {
    if args.is_empty() {
        return 0;
    }
    let mut depth = 0i64;
    let mut commas = 0;
    let mut j = 0;
    while j < args.len() {
        let t = args[j];
        if t.is_punct("::") && args.get(j + 1).is_some_and(|n| n.is_punct("<")) {
            // skip_angles works on the tail sub-slice; translate back.
            j += skip_angles(&args[j + 1..], 0) + 1;
            continue;
        }
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(",") {
            commas += 1;
        }
        j += 1;
    }
    commas + 1
}

/// Splits a parameter list into top-level comma-separated chunks.
fn param_chunks<'s, 't>(params: &'s [&'t Tok]) -> Vec<&'s [&'t Tok]> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0;
    for (j, t) in params.iter().enumerate() {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">>") {
            depth -= 2;
        } else if depth == 0 && t.is_punct(",") {
            out.push(&params[start..j]);
            start = j + 1;
        }
    }
    if start < params.len() {
        out.push(&params[start..]);
    }
    out
}

/// The workspace-wide index an analysis builds in pass 1.
#[derive(Debug)]
pub struct Inventory<K> {
    /// Repo-relative paths of the analyzed files.
    pub files: Vec<String>,
    /// Every function found, in scan order.
    pub fns: Vec<FnNode<K>>,
    /// `(struct, field)` -> candidate type names.
    field_types: BTreeMap<(String, String), Vec<String>>,
    /// Trait names (dyn-dispatch widening).
    traits: BTreeSet<String>,
}

impl<K> Default for Inventory<K> {
    fn default() -> Self {
        Self {
            files: Vec::new(),
            fns: Vec::new(),
            field_types: BTreeMap::new(),
            traits: BTreeSet::new(),
        }
    }
}

impl<K> Inventory<K> {
    /// An inventory over the given repo-relative file paths.
    pub fn for_files(files: Vec<String>) -> Self {
        Self {
            files,
            ..Self::default()
        }
    }

    /// Whether a file plausibly hosts module `module` (`deep.rs`,
    /// `deep/…`, or `crates/deep/…`) — used to scope `module::free_fn()`
    /// resolution.
    fn file_matches_module(&self, file: usize, module: &str) -> bool {
        self.files.get(file).is_some_and(|p| {
            p.contains(&format!("/{module}.rs"))
                || p.contains(&format!("/{module}/"))
                || p.contains(&format!("crates/{module}/"))
        })
    }
}

/// Records struct fields' type-name candidates.
fn index_struct_fields<K>(toks: &[&Tok], inv: &mut Inventory<K>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) {
            let name = toks[i + 1].text.clone();
            let mut j = skip_angles(toks, i + 2);
            while j < toks.len()
                && !toks[j].is_punct("{")
                && !toks[j].is_punct("(")
                && !toks[j].is_punct(";")
            {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                let mut depth = 1i64;
                let mut k = j + 1;
                let mut chunk_start = k;
                while k < toks.len() && depth > 0 {
                    let tk = toks[k];
                    if tk.is_punct("{") || tk.is_punct("(") || tk.is_punct("[") {
                        depth += 1;
                    } else if tk.is_punct("}") || tk.is_punct(")") || tk.is_punct("]") {
                        depth -= 1;
                    }
                    if depth == 0 || (depth == 1 && tk.is_punct(",")) {
                        let chunk = &toks[chunk_start..k];
                        // `field: Type` — find the first `ident :` pair.
                        for (p, t) in chunk.iter().enumerate() {
                            if t.kind == Kind::Ident
                                && chunk.get(p + 1).is_some_and(|n| n.is_punct(":"))
                            {
                                let tys = type_names(&chunk[p + 2..]);
                                if !tys.is_empty() {
                                    inv.field_types.insert((name.clone(), t.text.clone()), tys);
                                }
                                break;
                            }
                        }
                        chunk_start = k + 1;
                    }
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

/// Scans one file's (test-masked) tokens into the inventory. `fi` is the
/// file's index; `sites` are the analysis sites pre-scanned from the same
/// token stream, attributed here to their innermost enclosing function.
pub fn scan_file<K: Copy>(fi: usize, toks: &[&Tok], sites: Vec<Site<K>>, inv: &mut Inventory<K>) {
    index_struct_fields(toks, inv);
    let (omap, traits) = owner_map(toks);
    inv.traits.extend(traits);

    // (body start tok, body end tok, fn id) spans for site attribution.
    let mut spans: Vec<(usize, usize, usize)> = Vec::new();
    // Open fn stack: (fn id, depth at body open, body start, typed locals).
    type Frame = (usize, i64, usize, BTreeMap<String, Vec<String>>);
    let mut open: Vec<Frame> = Vec::new();
    let mut depth = 0i64;

    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) {
            let name = toks[i + 1].text.clone();
            let j = skip_angles(toks, i + 2);
            if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                if let Some(close) = matching_paren(toks, j) {
                    let params = &toks[j + 1..close];
                    let chunks = param_chunks(params);
                    let is_method = chunks.first().is_some_and(|c| {
                        c.iter().any(|t| t.is_ident("self"))
                            && c.iter().take_while(|t| !t.is_ident("self")).all(|t| {
                                t.is_punct("&") || t.is_ident("mut") || t.kind == Kind::Lifetime
                            })
                    });
                    let arity = chunks.len().saturating_sub(usize::from(is_method));
                    // Typed params seed the body's locals.
                    let mut locals: BTreeMap<String, Vec<String>> = BTreeMap::new();
                    for c in chunks.iter().skip(usize::from(is_method)) {
                        if let Some(colon) = c.iter().position(|t| t.is_punct(":")) {
                            if colon >= 1 && c[colon - 1].kind == Kind::Ident {
                                let tys = type_names(&c[colon + 1..]);
                                if !tys.is_empty() {
                                    locals.insert(c[colon - 1].text.clone(), tys);
                                }
                            }
                        }
                    }
                    // Find the body `{` (or `;` for a bodyless decl),
                    // skipping `[…; N]` array return types whose `;`
                    // would otherwise read as end-of-declaration.
                    let mut k = close + 1;
                    let mut brackets = 0i64;
                    while k < toks.len() {
                        let tk = toks[k];
                        if tk.is_punct("[") {
                            brackets += 1;
                        } else if tk.is_punct("]") {
                            brackets -= 1;
                        } else if brackets == 0 && (tk.is_punct("{") || tk.is_punct(";")) {
                            break;
                        }
                        k += 1;
                    }
                    let id = inv.fns.len();
                    inv.fns.push(FnNode {
                        owner: omap.get(i).cloned().flatten(),
                        name,
                        file: fi,
                        arity,
                        calls: Vec::new(),
                        sites: Vec::new(),
                    });
                    if toks.get(k).is_some_and(|t| t.is_punct("{")) {
                        open.push((id, depth, k + 1, locals));
                        depth += 1;
                    }
                    i = k + 1;
                    continue;
                }
            }
        }
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth -= 1;
            while open.last().is_some_and(|(_, d, _, _)| *d >= depth) {
                if let Some((id, _, start, _)) = open.pop() {
                    spans.push((start, i, id));
                }
            }
            i += 1;
            continue;
        }
        if let Some((fn_id, _, _, locals)) = open.last_mut() {
            // Typed locals: `let x: Type = …` or `let x = Type::…`.
            if t.is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.kind == Kind::Ident) {
                    let var = toks[j].text.clone();
                    let mut tys = Vec::new();
                    if toks.get(j + 1).is_some_and(|t| t.is_punct(":")) {
                        let mut e = j + 2;
                        while e < toks.len() && !toks[e].is_punct("=") && !toks[e].is_punct(";") {
                            e += 1;
                        }
                        tys = type_names(&toks[j + 2..e]);
                    } else if toks.get(j + 1).is_some_and(|t| t.is_punct("="))
                        && toks.get(j + 2).is_some_and(|t| {
                            t.kind == Kind::Ident
                                && t.text.chars().next().is_some_and(char::is_uppercase)
                        })
                        && toks.get(j + 3).is_some_and(|t| t.is_punct("::"))
                    {
                        tys = vec![toks[j + 2].text.clone()];
                    }
                    if !tys.is_empty() {
                        locals.insert(var, tys);
                    }
                }
            }
            // Call sites: `name(…)` / `name::<…>(…)`, not a macro.
            if t.kind == Kind::Ident && !is_keyword(&t.text) {
                let after = if toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct("<"))
                {
                    skip_angles(toks, i + 2)
                } else {
                    i + 1
                };
                let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
                if !is_macro && toks.get(after).is_some_and(|n| n.is_punct("(")) {
                    if let Some(close) = matching_paren(toks, after) {
                        let args = count_args(&toks[after + 1..close]);
                        let prev = i.checked_sub(1).map(|p| toks[p]);
                        let method = prev.is_some_and(|p| p.is_punct("."));
                        let mut qualifier = None;
                        let mut recv_hints = Vec::new();
                        let mut recv_path = Vec::new();
                        if method {
                            recv_path = receiver_path(toks, i - 1);
                            if let [one] = recv_path.as_slice() {
                                if one != "self" {
                                    if let Some(tys) = locals.get(one) {
                                        recv_hints = tys.clone();
                                    }
                                }
                            }
                        } else if prev.is_some_and(|p| p.is_punct("::")) && i >= 2 {
                            let q = toks[i - 2];
                            if q.kind == Kind::Ident {
                                qualifier = Some(q.text.clone());
                            }
                        }
                        inv.fns[*fn_id].calls.push(Call {
                            name: t.text.clone(),
                            qualifier,
                            method,
                            recv_hints,
                            recv_path,
                            args,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    while let Some((id, _, start, _)) = open.pop() {
        spans.push((start, toks.len(), id));
    }

    // Attribute sites to the innermost enclosing function. Sites outside
    // any body (consts, statics) have no serving caller and stay out of
    // the cone; the lint pass still reports them.
    for s in sites {
        let hit = spans
            .iter()
            .filter(|&&(start, end, _)| start <= s.tok && s.tok < end)
            .min_by_key(|&&(start, end, _)| end - start);
        if let Some(&(_, _, id)) = hit {
            inv.fns[id].sites.push(s);
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 2: resolution + reachability.
// ---------------------------------------------------------------------------

/// What owner shape an entry point requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryOwner {
    /// The method on every impl (dyn-dispatch families like
    /// `search_with`).
    AnyImpl,
    /// The method on one named impl owner.
    Named(&'static str),
    /// A free function (no impl owner), e.g. `mmr_diversify`.
    Free,
}

/// An analysis entry-point matcher.
#[derive(Debug, Clone, Copy)]
pub struct EntryPoint {
    /// Required owner shape.
    pub owner: EntryOwner,
    /// Function name.
    pub name: &'static str,
}

impl EntryPoint {
    /// Whether `f` matches this entry point.
    pub fn matches<K>(&self, f: &FnNode<K>) -> bool {
        f.name == self.name
            && match self.owner {
                EntryOwner::AnyImpl => f.owner.is_some(),
                EntryOwner::Named(o) => f.owner.as_deref() == Some(o),
                EntryOwner::Free => f.owner.is_none(),
            }
    }
}

struct Resolver<'a, K> {
    inv: &'a Inventory<K>,
    by_owner_name: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    methods_by_name: BTreeMap<&'a str, Vec<usize>>,
    free_by_name: BTreeMap<&'a str, Vec<usize>>,
}

impl<'a, K> Resolver<'a, K> {
    fn new(inv: &'a Inventory<K>) -> Self {
        let mut by_owner_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, f) in inv.fns.iter().enumerate() {
            if let Some(owner) = &f.owner {
                by_owner_name
                    .entry((owner.as_str(), f.name.as_str()))
                    .or_default()
                    .push(id);
                methods_by_name.entry(f.name.as_str()).or_default().push(id);
            } else {
                free_by_name.entry(f.name.as_str()).or_default().push(id);
            }
        }
        Self {
            inv,
            by_owner_name,
            methods_by_name,
            free_by_name,
        }
    }

    /// Callees for `Owner::name`. A trait owner means dyn dispatch:
    /// every impl of the method is a candidate alongside the trait's
    /// default body.
    fn owned(&self, owner: &str, name: &str) -> Vec<usize> {
        let direct: Vec<usize> = self
            .by_owner_name
            .get(&(owner, name))
            .cloned()
            .unwrap_or_default();
        if self.inv.traits.contains(owner) {
            let mut all = direct;
            all.extend(self.fallback_methods(name, None));
            all.sort_unstable();
            all.dedup();
            all
        } else {
            direct
        }
    }

    fn fallback_methods(&self, name: &str, arity: Option<usize>) -> Vec<usize> {
        self.methods_by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| arity.is_none_or(|a| self.inv.fns[id].arity == a))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Candidate callee ids for `call` made from `caller`.
    fn resolve(&self, call: &Call, caller: &FnNode<K>) -> Vec<usize> {
        if call.method {
            if call.recv_path.first().map(String::as_str) == Some("self") {
                if let Some(owner) = &caller.owner {
                    // `self.m(…)` or `self.field.m(…)` with a known
                    // field type.
                    let mut hit: Vec<usize> = match call.recv_path.len() {
                        1 => self.owned(owner, &call.name),
                        2 => self
                            .inv
                            .field_types
                            .get(&(owner.clone(), call.recv_path[1].clone()))
                            .into_iter()
                            .flatten()
                            .flat_map(|t| self.owned(t, &call.name))
                            .collect(),
                        _ => Vec::new(),
                    };
                    if !hit.is_empty() {
                        hit.sort_unstable();
                        hit.dedup();
                        return hit;
                    }
                }
            }
            if !call.recv_hints.is_empty() {
                let mut hit: Vec<usize> = call
                    .recv_hints
                    .iter()
                    .flat_map(|t| self.owned(t, &call.name))
                    .collect();
                if !hit.is_empty() {
                    hit.sort_unstable();
                    hit.dedup();
                    return hit;
                }
            }
            // Unknown receiver: every same-name, same-arity method.
            return self.fallback_methods(&call.name, Some(call.args));
        }
        match call.qualifier.as_deref() {
            Some("Self") | Some("self") => caller
                .owner
                .as_deref()
                .map(|o| self.owned(o, &call.name))
                .unwrap_or_default(),
            Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                self.owned(q, &call.name)
            }
            Some(q) => {
                // Module-qualified free call: prefer fns whose file
                // matches the module segment, fall back to all.
                let all = self
                    .free_by_name
                    .get(call.name.as_str())
                    .cloned()
                    .unwrap_or_default();
                let module = q.strip_prefix("mqa_").unwrap_or(q);
                let scoped: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&id| self.inv.file_matches_module(self.inv.fns[id].file, module))
                    .collect();
                if scoped.is_empty() {
                    all
                } else {
                    scoped
                }
            }
            None => self
                .free_by_name
                .get(call.name.as_str())
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| self.inv.fns[id].arity == call.args)
                        .collect()
                })
                .unwrap_or_default(),
        }
    }
}

/// The resolved call graph with reachability from an entry-point set.
#[derive(Debug)]
pub struct Cone {
    /// Resolved call edges, caller -> callees.
    pub adj: Vec<Vec<usize>>,
    /// Total resolved edge count.
    pub edges: usize,
    /// Entry-point function ids.
    pub entries: Vec<usize>,
    /// Per-function reachability from the entry set.
    pub reached: Vec<bool>,
    /// BFS parent pointers (for sample call-chain excerpts).
    parent: Vec<Option<usize>>,
}

impl Cone {
    /// A sample entry-to-`id` call chain, `a -> b -> c`, capped at six
    /// hops.
    pub fn path_to<K>(&self, inv: &Inventory<K>, mut id: usize) -> String {
        let mut names = vec![inv.fns[id].display()];
        let mut hops = 0;
        while let Some(p) = self.parent[id] {
            names.push(inv.fns[p].display());
            id = p;
            hops += 1;
            if hops >= 6 {
                names.push("…".to_string());
                break;
            }
        }
        names.reverse();
        names.join(" -> ")
    }

    /// Reachable function count.
    pub fn reachable_fns(&self) -> usize {
        self.reached.iter().filter(|&&r| r).count()
    }
}

/// Resolves every call in the inventory and BFSes from the functions
/// matching `entry_points`.
pub fn build_cone<K>(inv: &Inventory<K>, entry_points: &[EntryPoint]) -> Cone {
    let resolver = Resolver::new(inv);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); inv.fns.len()];
    let mut edges = 0usize;
    for (id, f) in inv.fns.iter().enumerate() {
        let mut outs = BTreeSet::new();
        for call in &f.calls {
            outs.extend(resolver.resolve(call, f));
        }
        edges += outs.len();
        adj[id] = outs.into_iter().collect();
    }

    let entries: Vec<usize> = inv
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| entry_points.iter().any(|ep| ep.matches(f)))
        .map(|(id, _)| id)
        .collect();

    // BFS with parent pointers for sample paths in excerpts.
    let mut parent: Vec<Option<usize>> = vec![None; inv.fns.len()];
    let mut reached: Vec<bool> = vec![false; inv.fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in &entries {
        if !reached[e] {
            reached[e] = true;
            queue.push_back(e);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &m in &adj[n] {
            if !reached[m] {
                reached[m] = true;
                parent[m] = Some(n);
                queue.push_back(m);
            }
        }
    }

    Cone {
        adj,
        edges,
        entries,
        reached,
        parent,
    }
}
