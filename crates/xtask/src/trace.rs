//! The `trace` gate: end-to-end verification of per-query distributed
//! tracing.
//!
//! Runs a seeded multi-turn dialogue through the concurrent engine with
//! tracing enabled, then checks the contract the serving path promises:
//!
//! 1. every turn yields exactly one finalized [`mqa_obs::QueryTrace`]
//!    (and every engine-submitted ticket is visible as a worker-served
//!    trace);
//! 2. every engine-served trace covers all five query milestones
//!    ([`mqa_obs::trace::QUERY_MILESTONES`]); cache-hit turns may skip
//!    the retrieval milestones only;
//! 3. queue-wait + service stay within a pinned clock-slack bound of the
//!    engine's submit-to-resolve duration, which itself nests inside the
//!    end-to-end turn duration — tail-latency attribution adds up;
//! 4. no orphan stages: every recorded stage's parent is the trace root,
//!    another recorded stage, or empty (a root-level stage);
//! 5. the retained-set policy is deterministic: each trace's `sampled`
//!    flag reproduces [`mqa_obs::trace::sample_hit`] under the gate seed,
//!    and the slowest-N set is ordered slowest-first;
//! 6. the `/metrics` surface parses as valid Prometheus/OpenMetrics text
//!    exposition and carries at least one histogram exemplar linking a
//!    latency bucket back to a trace id.
//!
//! Artifacts written under `--out` (default `results/trace`):
//! `traces.jsonl`, `slow_queries.txt`, `metrics.txt` (the exposition),
//! and `BENCH_trace.json` (p50/p99 end-to-end latency, queue-wait share,
//! cache-hit rate).

use mqa_core::{Config, MqaSystem, Turn};
use mqa_kb::DatasetSpec;
use mqa_obs::trace::{sample_hit, QUERY_MILESTONES};
use mqa_obs::{QueryTrace, Snapshot, TraceConfig};
use serde::Serialize;
use std::path::Path;

/// Turns the scenario runs: four distinct turns plus one repeat that must
/// be served from the result cache.
const TURNS: usize = 5;

/// Engine worker threads in the scenario.
const WORKERS: usize = 2;

/// Deterministic sampling period used by the gate.
const SAMPLE_EVERY: u64 = 2;

/// Clock slack allowed between independently-measured nested durations
/// (each `Stopwatch` rounds independently, and the OS may preempt between
/// the inner stop and the outer stop).
const CLOCK_SLACK_US: u64 = 5_000;

/// Counters the scenario must leave non-zero.
const REQUIRED_COUNTERS: [&str; 3] = [
    "obs.trace.started",
    "obs.trace.completed",
    "engine.query.submitted",
];

/// Histograms the scenario must populate.
const REQUIRED_HISTOGRAMS: [&str; 2] = ["engine.query.latency_us", "engine.query.queue_wait_us"];

/// The `BENCH_trace.json` payload.
#[derive(Debug, Serialize)]
struct BenchTrace {
    turns: usize,
    engine_served: usize,
    cache_hits: usize,
    p50_total_us: u64,
    p99_total_us: u64,
    queue_wait_share: f64,
    cache_hit_rate: f64,
}

/// What the gate measured, for the caller to print.
pub struct TraceOutcome {
    /// Finalized traces retained by the collector.
    pub traces: usize,
    /// Traces that crossed the worker pool.
    pub engine_served: usize,
    /// Traces answered from the result cache.
    pub cache_hits: usize,
    /// Median end-to-end turn latency.
    pub p50_total_us: u64,
    /// Tail end-to-end turn latency.
    pub p99_total_us: u64,
    /// Fraction of engine-served wall time spent queued.
    pub queue_wait_share: f64,
    /// Samples in the rendered text exposition.
    pub exposition_samples: usize,
    /// Histogram exemplars in the rendered text exposition.
    pub exposition_exemplars: usize,
}

/// Runs the traced scenario and writes the artifacts under `out_dir`.
///
/// # Errors
/// Returns a message when the scenario cannot be built, an artifact
/// cannot be written, or any tracing-contract check fails.
pub fn run(out_dir: &Path, seed: u64) -> Result<TraceOutcome, String> {
    mqa_obs::global().reset();
    mqa_obs::trace::configure(TraceConfig {
        slowest: 64,
        sample_every: SAMPLE_EVERY,
        seed,
        max_sampled: 256,
    });
    mqa_obs::trace::enable();
    let result = scenario(seed);
    // Tracing must come back off even when the scenario fails, so a gate
    // failure cannot leak trace minting into unrelated code.
    mqa_obs::trace::disable();
    result?;

    let traces = mqa_obs::trace::snapshot_traces();
    let snapshot = mqa_obs::global().snapshot();
    let exposition = mqa_obs::expo::render(&snapshot);

    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    std::fs::write(out_dir.join("traces.jsonl"), mqa_obs::trace::to_jsonl())
        .map_err(|e| format!("writing traces.jsonl: {e}"))?;
    std::fs::write(
        out_dir.join("slow_queries.txt"),
        mqa_obs::report::render_slow_queries(&mqa_obs::trace::slowest_traces()),
    )
    .map_err(|e| format!("writing slow_queries.txt: {e}"))?;
    std::fs::write(out_dir.join("metrics.txt"), &exposition)
        .map_err(|e| format!("writing metrics.txt: {e}"))?;

    let stats = verify(&traces, &snapshot, &exposition, seed)?;

    let bench = bench_summary(&traces);
    let payload = serde_json::to_string_pretty(&bench)
        .map_err(|e| format!("serializing BENCH_trace.json: {e}"))?;
    std::fs::write(out_dir.join("BENCH_trace.json"), payload)
        .map_err(|e| format!("writing BENCH_trace.json: {e}"))?;

    Ok(TraceOutcome {
        traces: traces.len(),
        engine_served: bench.engine_served,
        cache_hits: bench.cache_hits,
        p50_total_us: bench.p50_total_us,
        p99_total_us: bench.p99_total_us,
        queue_wait_share: bench.queue_wait_share,
        exposition_samples: stats.samples,
        exposition_exemplars: stats.exemplars,
    })
}

/// Builds the system and runs the five turns: a four-round session (text,
/// click-refine, reject-refine, history-carried follow-up), then a fresh
/// session repeating the opening turn so the result cache serves it.
fn scenario(seed: u64) -> Result<(), String> {
    let kb = DatasetSpec::weather()
        .objects(120)
        .concepts(6)
        .caption_noise(0.05)
        .seed(seed)
        .generate();
    let config = Config {
        diversify: Some(0.4),
        carry_history: true,
        ..Config::default()
    };
    let mut sys = MqaSystem::build(config, kb).map_err(|e| format!("build failed: {e}"))?;
    sys.enable_engine(mqa_engine::EngineOptions::with_workers(WORKERS));
    sys.enable_result_cache(64);

    let opener = sys.corpus().kb().get(0).title.clone();
    let phrase = opener
        .rsplit_once(" #")
        .map(|(p, _)| p.to_string())
        .unwrap_or(opener);
    {
        let mut session = sys.open_session();
        let turns = [
            Turn::text(format!("show me {phrase}")),
            Turn::select_and_text(0, format!("more {phrase} like this one")),
            Turn::reject_and_text(1, "not that one"),
            Turn::text("even more of those"),
        ];
        for turn in turns {
            session.ask(turn).map_err(|e| format!("turn failed: {e}"))?;
        }
    }
    {
        // A fresh session's opening turn fingerprints identically to the
        // first session's, so the result cache must answer it.
        let mut session = sys.open_session();
        session
            .ask(Turn::text(format!("show me {phrase}")))
            .map_err(|e| format!("repeat turn failed: {e}"))?;
    }
    Ok(())
}

/// Summarizes the retained traces for `BENCH_trace.json`.
fn bench_summary(traces: &[QueryTrace]) -> BenchTrace {
    let mut totals: Vec<u64> = traces.iter().map(|t| t.total_us).collect();
    totals.sort_unstable();
    let pick = |q: f64| -> u64 {
        if totals.is_empty() {
            return 0;
        }
        let idx = ((totals.len() as f64 - 1.0) * q).round() as usize;
        totals.get(idx).copied().unwrap_or(0)
    };
    let engine_served: Vec<&QueryTrace> = traces.iter().filter(|t| t.worker.is_some()).collect();
    let queued: u64 = engine_served.iter().map(|t| t.queue_wait_us).sum();
    let walled: u64 = engine_served.iter().map(|t| t.total_us).sum();
    let cache_hits = traces.iter().filter(|t| t.cache_hit == Some(true)).count();
    BenchTrace {
        turns: traces.len(),
        engine_served: engine_served.len(),
        cache_hits,
        p50_total_us: pick(0.50),
        p99_total_us: pick(0.99),
        queue_wait_share: if walled == 0 {
            0.0
        } else {
            queued as f64 / walled as f64
        },
        cache_hit_rate: if traces.is_empty() {
            0.0
        } else {
            cache_hits as f64 / traces.len() as f64
        },
    }
}

/// Stage-parent linkage check: every recorded stage must hang off the
/// trace root, another recorded stage, or be a root-level stage itself.
fn orphan_stages(trace: &QueryTrace) -> Vec<String> {
    trace
        .stages
        .iter()
        .filter(|s| {
            !s.parent.is_empty()
                && s.parent != trace.root
                && !trace.stages.iter().any(|o| o.name == s.parent)
        })
        .map(|s| format!("{} (parent `{}`)", s.name, s.parent))
        .collect()
}

/// The tracing-contract checks behind the CI gate.
fn verify(
    traces: &[QueryTrace],
    snapshot: &Snapshot,
    exposition: &str,
    seed: u64,
) -> Result<mqa_obs::expo::ExpoStats, String> {
    let mut problems = Vec::new();

    // 1. Exactly one finalized trace per turn, none lost, none duplicated.
    if traces.len() != TURNS {
        problems.push(format!(
            "retained {} trace(s), expected {TURNS}",
            traces.len()
        ));
    }
    let finalized = mqa_obs::trace::finalized_count();
    if finalized != TURNS as u64 {
        problems.push(format!("finalized {finalized} trace(s), expected {TURNS}"));
    }
    let engine_served = traces.iter().filter(|t| t.worker.is_some()).count();
    let submitted = snapshot.counter("engine.query.submitted").unwrap_or(0);
    if submitted != engine_served as u64 {
        problems.push(format!(
            "{submitted} submitted ticket(s) but {engine_served} worker-served trace(s): \
             a ticket lost or duplicated its trace"
        ));
    }
    let cache_hits = traces.iter().filter(|t| t.cache_hit == Some(true)).count();
    if cache_hits != 1 {
        problems.push(format!(
            "{cache_hits} cache-hit trace(s), expected exactly 1"
        ));
    }

    let retrieval_milestones = ["Encoding", "Fusion", "Index Search"];
    for t in traces {
        let tag = format!("trace {} (seq {})", t.trace_id, t.seq);
        if t.outcome != "completed" {
            problems.push(format!("{tag}: outcome `{}`", t.outcome));
        }
        if t.serial_fallback {
            problems.push(format!("{tag}: unexpected serial fallback"));
        }
        // 2. Milestone coverage (cache hits may skip retrieval only).
        let missing = mqa_obs::trace::missing_milestones(t);
        if t.cache_hit == Some(true) {
            let illegal: Vec<&str> = missing
                .iter()
                .filter(|m| !retrieval_milestones.contains(m))
                .copied()
                .collect();
            if !illegal.is_empty() {
                problems.push(format!("{tag}: cache hit missing milestone(s) {illegal:?}"));
            }
        } else if !missing.is_empty() {
            problems.push(format!(
                "{tag}: missing milestone(s) {missing:?} of {}",
                QUERY_MILESTONES.len()
            ));
        }
        // 3. Tail-latency attribution adds up for worker-served traces.
        if let Some(w) = t.worker {
            if w >= WORKERS as u64 {
                problems.push(format!("{tag}: worker id {w} out of range"));
            }
            let parts = t.queue_wait_us + t.service_us;
            if parts > t.engine_total_us + CLOCK_SLACK_US {
                problems.push(format!(
                    "{tag}: queue {} + service {} exceeds engine total {} (+{CLOCK_SLACK_US} slack)",
                    t.queue_wait_us, t.service_us, t.engine_total_us
                ));
            }
            if t.engine_total_us > t.total_us + CLOCK_SLACK_US {
                problems.push(format!(
                    "{tag}: engine total {} exceeds end-to-end {} (+{CLOCK_SLACK_US} slack)",
                    t.engine_total_us, t.total_us
                ));
            }
            if t.prompt_tokens == 0 || t.completion_tokens == 0 {
                problems.push(format!("{tag}: LLM token counts missing"));
            }
            if t.framework.is_empty() {
                problems.push(format!("{tag}: retrieval framework not noted"));
            }
            if t.evals == 0 {
                problems.push(format!("{tag}: no graph-walk work attributed"));
            }
        }
        // 4. No orphan stages.
        let orphans = orphan_stages(t);
        if !orphans.is_empty() {
            problems.push(format!("{tag}: orphan stage(s): {}", orphans.join(", ")));
        }
        // 5. Sampling decisions are reproducible from (seed, seq).
        if t.sampled != sample_hit(seed, t.seq, SAMPLE_EVERY) {
            problems.push(format!(
                "{tag}: sampled flag {} disagrees with sample_hit(seed, {}, {SAMPLE_EVERY})",
                t.sampled, t.seq
            ));
        }
    }

    // 5b. The slowest-N set is ordered slowest-first and (with the cap
    // above the turn count) retains every trace.
    let slowest = mqa_obs::trace::slowest_traces();
    if slowest.len() != traces.len() {
        problems.push(format!(
            "slowest-N retained {} of {} trace(s) despite headroom",
            slowest.len(),
            traces.len()
        ));
    }
    if slowest.windows(2).any(|w| match w {
        [a, b] => a.total_us < b.total_us,
        _ => false,
    }) {
        problems.push("slowest-N set is not ordered slowest-first".to_string());
    }

    for name in REQUIRED_COUNTERS {
        match snapshot.counter(name) {
            Some(v) if v > 0 => {}
            _ => problems.push(format!("counter `{name}` missing or zero")),
        }
    }
    if snapshot.counter("obs.trace.canceled").unwrap_or(0) != 0 {
        problems.push("obs.trace.canceled is non-zero in a healthy scenario".to_string());
    }
    for name in REQUIRED_HISTOGRAMS {
        match snapshot.histogram(name) {
            Some(h) if h.count > 0 => {}
            _ => problems.push(format!("histogram `{name}` missing or empty")),
        }
    }

    // 6. The exposition parses and carries at least one exemplar.
    let stats = match mqa_obs::expo::parse(exposition) {
        Ok(stats) => {
            if stats.exemplars == 0 {
                problems.push("exposition carries no histogram exemplars".to_string());
            }
            stats
        }
        Err(e) => {
            problems.push(format!("/metrics exposition invalid: {e}"));
            mqa_obs::expo::ExpoStats {
                families: 0,
                samples: 0,
                exemplars: 0,
            }
        }
    };

    if problems.is_empty() {
        Ok(stats)
    } else {
        Err(format!("trace gate failed:\n  {}", problems.join("\n  ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_and_writes_artifacts() {
        let _serial = crate::scenario_lock();
        let dir = std::env::temp_dir().join(format!("mqa-xtask-trace-test-{}", std::process::id()));
        let outcome = run(&dir, 42).expect("trace gate must pass its own checks");
        assert_eq!(outcome.traces, TURNS);
        assert_eq!(outcome.engine_served, TURNS - 1);
        assert_eq!(outcome.cache_hits, 1);
        assert!(outcome.exposition_exemplars >= 1);
        for file in [
            "traces.jsonl",
            "slow_queries.txt",
            "metrics.txt",
            "BENCH_trace.json",
        ] {
            let body = std::fs::read_to_string(dir.join(file)).expect("artifact readable");
            assert!(!body.is_empty(), "{file} is empty");
        }
        let jsonl = std::fs::read_to_string(dir.join("traces.jsonl")).expect("jsonl");
        assert_eq!(jsonl.lines().count(), TURNS);
        let first: mqa_obs::QueryTrace =
            serde_json::from_str(jsonl.lines().next().expect("a line")).expect("trace parses");
        assert_eq!(first.outcome, "completed");
        let bench = std::fs::read_to_string(dir.join("BENCH_trace.json")).expect("bench");
        assert!(bench.contains("\"p99_total_us\""));
        assert!(bench.contains("\"queue_wait_share\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
