//! The source-walking lint engine.
//!
//! Dependency-free static analysis over the workspace's Rust sources. The
//! engine is deliberately line-oriented: a [`strip`] pass removes comments
//! and string/char literals (so rules never fire on prose), a mask pass
//! hides `#[cfg(test)]` items (test code may unwrap freely), and each
//! [`Rule`] then matches on what remains. Findings carry exact
//! `file:line` coordinates so they are clickable in editors and stable
//! enough to waive via the [`crate::baseline`] allowlist.

use crate::baseline::Baseline;
use std::fmt;
use std::path::{Path, PathBuf};

/// The enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `.unwrap()` in non-test library code.
    NoUnwrap,
    /// `.expect(` in non-test library code.
    NoExpect,
    /// `panic!` / `todo!` / `unimplemented!` in non-test library code.
    NoPanic,
    /// Float `==` / `!=` comparison in a distance/weight kernel path.
    FloatEq,
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    UnsafeNoSafety,
    /// A wildcard `_ =>` arm in a `match` over an error value.
    WildcardErrorMatch,
    /// Ad-hoc `Instant::now()` timing outside the bench/obs crates.
    AdHocTiming,
    /// A cycle in the global lock-order graph (`mqa-xtask conc`).
    LockOrderCycle,
    /// `Condvar::wait` outside a `while`/`loop` predicate re-check.
    CondvarNoLoop,
    /// A live `MutexGuard` held across a blocking call.
    GuardAcrossBlocking,
    /// Direct slice/Vec `[...]` indexing on a serving-path crate.
    NoIndexPanic,
    /// A narrowing `as` cast that can silently truncate.
    NoLossyCast,
    /// Integer `/` or `%` with a non-literal (or zero-literal) divisor.
    NoRawDiv,
    /// A panic-capable site reachable from a serving entry point
    /// (`mqa-xtask flow`).
    ReachablePanic,
    /// An allocation-capable site reachable from a steady-state serving
    /// entry point (`mqa-xtask alloc`). Subsumes the retired
    /// `no-visited-alloc` lint: a fresh `vec![false; n]` visited set on a
    /// search path is now one flavor of reachable allocation.
    ReachableAlloc,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 15] = [
        Rule::NoUnwrap,
        Rule::NoExpect,
        Rule::NoPanic,
        Rule::FloatEq,
        Rule::UnsafeNoSafety,
        Rule::WildcardErrorMatch,
        Rule::AdHocTiming,
        Rule::LockOrderCycle,
        Rule::CondvarNoLoop,
        Rule::GuardAcrossBlocking,
        Rule::NoIndexPanic,
        Rule::NoLossyCast,
        Rule::NoRawDiv,
        Rule::ReachablePanic,
        Rule::ReachableAlloc,
    ];

    /// The kebab-case rule name used in reports and waivers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoExpect => "no-expect",
            Rule::NoPanic => "no-panic",
            Rule::FloatEq => "float-eq",
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::WildcardErrorMatch => "wildcard-error-match",
            Rule::AdHocTiming => "ad-hoc-timing",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::CondvarNoLoop => "condvar-no-loop",
            Rule::GuardAcrossBlocking => "guard-across-blocking",
            Rule::NoIndexPanic => "no-index-panic",
            Rule::NoLossyCast => "no-lossy-cast",
            Rule::NoRawDiv => "no-raw-div",
            Rule::ReachablePanic => "flow-reachable-panic",
            Rule::ReachableAlloc => "alloc-reachable",
        }
    }

    /// Resolves a waiver's rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line rationale shown with findings.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "library code must propagate errors, not `.unwrap()` them",
            Rule::NoExpect => "library code must propagate errors, not `.expect(` them",
            Rule::NoPanic => "library code must not `panic!`/`todo!`/`unimplemented!`",
            Rule::FloatEq => "distance/weight kernels must not compare floats with == or !=",
            Rule::UnsafeNoSafety => "`unsafe` requires an adjacent `// SAFETY:` comment",
            Rule::WildcardErrorMatch => {
                "matches over error enums must list every variant, not `_ =>`"
            }
            Rule::AdHocTiming => {
                "instrumented code must time via mqa-obs spans/Stopwatch, not raw Instant::now()"
            }
            Rule::LockOrderCycle => {
                "two functions acquire these locks in opposite orders — a potential deadlock"
            }
            Rule::CondvarNoLoop => {
                "Condvar::wait returns on spurious wakeups; the predicate must be re-checked in a while/loop"
            }
            Rule::GuardAcrossBlocking => {
                "a MutexGuard held across a blocking call stalls every other thread needing that lock"
            }
            Rule::NoIndexPanic => {
                "serving-path indexing panics out-of-range; use .get() with a typed error or document the bound with an // INVARIANT: comment"
            }
            Rule::NoLossyCast => {
                "a narrowing `as` cast silently truncates; use a cast helper (mqa_vector::cast) or document with // INVARIANT:"
            }
            Rule::NoRawDiv => {
                "integer / or % panics on a zero divisor; guard it, use checked_div/rem, or document with // INVARIANT:"
            }
            Rule::ReachablePanic => {
                "a panic-capable site is reachable from a serving entry point; make it a typed error or waive it in flow-baseline.toml"
            }
            Rule::ReachableAlloc => {
                "a heap allocation is reachable from the steady-state serving path; hoist it, discharge it with // ALLOC:, or waive it in alloc-baseline.toml"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at an exact source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The trimmed original source line.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Replaces comments and string/char literal *contents* with spaces,
/// preserving line structure, so rules never match inside prose. Handles
/// line and (nested) block comments, plain/byte strings with escapes, raw
/// strings (`r"…"`, `r#"…"#`), and char literals vs. lifetimes.
pub fn strip(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let n = b.len();
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"…" or r#"…"# (optionally b-prefixed).
        let raw_start = if c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r') {
            let j = if c == 'r' { i + 1 } else { i + 2 };
            let mut hashes = 0;
            let mut k = j;
            while k < n && b[k] == '#' {
                hashes += 1;
                k += 1;
            }
            if k < n && b[k] == '"' {
                Some((k, hashes))
            } else {
                None
            }
        } else {
            None
        };
        if let Some((quote, hashes)) = raw_start {
            for _ in i..=quote {
                out.push(' ');
            }
            i = quote + 1;
            'raw: while i < n {
                if b[i] == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if i + 1 + h >= n || b[i + 1 + h] != '#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            out.push(' ');
                            i += 1;
                        }
                        break 'raw;
                    }
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Plain or byte string.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    // Preserve a line-continuation's newline: losing it
                    // desynchronizes the per-line test mask (built on the
                    // stripped text) from token line numbers (lexed from
                    // the original source).
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs. lifetime: a quote is a char literal if it
        // closes as one (`'x'`, `'\n'`, `'\u{…}'`); otherwise a lifetime.
        if c == '\'' {
            let is_char = if i + 1 < n && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && b[i + 2] == '\''
            };
            if is_char {
                out.push(' ');
                i += 1;
                if i < n && b[i] == '\\' {
                    out.push(' ');
                    i += 1;
                    if i < n && b[i] == 'u' {
                        // '\u{…}': blank through the closing brace.
                        while i < n && b[i] != '}' {
                            out.push(' ');
                            i += 1;
                        }
                    }
                }
                while i < n && b[i] != '\'' {
                    out.push(blank(b[i]));
                    i += 1;
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Per-line mask: `true` where the line belongs to a `#[cfg(test)]` item
/// (the attribute line itself, anything up to the opening brace, and the
/// whole braced body).
pub fn test_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // `armed`: saw the attribute, waiting for the item's opening brace.
    let mut armed = false;
    // While inside a test item: the depth the mask releases at.
    let mut release_at: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        if release_at.is_none() && !armed && line.contains("#[cfg(test)]") {
            armed = true;
        }
        if armed || release_at.is_some() {
            mask[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if armed {
                        release_at = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if release_at == Some(depth) {
                        release_at = None;
                    }
                }
                _ => {}
            }
        }
        // `#[cfg(test)] use …;` — an unbraced test-only item ends at `;`.
        if armed && line.trim_end().ends_with(';') {
            armed = false;
        }
    }
    mask
}

fn has_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= line.len()
            || !line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Per-file switches for the path-scoped rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintFlags {
    /// Float-comparison rule (distance/weight kernel paths only).
    pub kernel: bool,
    /// Ad-hoc-timing rule (everywhere except bench/obs, which own raw
    /// clocks by design).
    pub timing: bool,
    /// Arithmetic-safety rules (no-index-panic, no-lossy-cast,
    /// no-raw-div) on the serving-path crates.
    pub arith: bool,
    /// Fail-fast CLI driver (`…/src/bin/…`): exempt from the
    /// no-unwrap/no-expect rules — aborting with the message IS the
    /// designed behavior for experiment binaries, and the exemption
    /// replaces the per-binary waivers the baseline used to carry.
    pub fail_fast_bin: bool,
}

/// Reporting order of a rule within one line.
fn rule_order(rule: Rule) -> usize {
    Rule::ALL
        .iter()
        .position(|&r| r == rule)
        .unwrap_or(usize::MAX)
}

/// Lints one file's source with the given path-scoped [`LintFlags`].
///
/// The exactness-critical rules (no-unwrap, no-expect, float-eq,
/// ad-hoc-timing) match on the [`crate::rustlex`] token stream, so
/// call chains split across lines still fire and prose in strings and
/// comments never does. The block-structure rules (no-panic, unsafe,
/// wildcard-error-match) stay on the stripped line pass, which carries
/// the adjacency context they need.
pub fn lint_source(file: &str, source: &str, flags: &LintFlags) -> Vec<Finding> {
    let stripped = strip(source);
    let mask = test_mask(&stripped);
    let raw_lines: Vec<&str> = source.lines().collect();
    let code_lines: Vec<&str> = stripped.lines().collect();
    let mut findings = Vec::new();

    // ---- token-stream rules ----
    let all_toks = crate::rustlex::lex(source);
    let toks: Vec<&crate::rustlex::Tok> = all_toks
        .iter()
        .filter(|t| !mask.get(t.line - 1).copied().unwrap_or(false))
        .collect();
    let push_tok = |line: usize, rule: Rule, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule,
            excerpt: raw_lines
                .get(line - 1)
                .map_or(String::new(), |l| l.trim().to_string()),
        });
    };
    if !flags.fail_fast_bin {
        for w in toks.windows(4) {
            if w[0].is_punct(".")
                && w[1].is_ident("unwrap")
                && w[2].is_punct("(")
                && w[3].is_punct(")")
            {
                push_tok(w[1].line, Rule::NoUnwrap, &mut findings);
            }
        }
        for w in toks.windows(3) {
            if w[0].is_punct(".") && w[1].is_ident("expect") && w[2].is_punct("(") {
                push_tok(w[1].line, Rule::NoExpect, &mut findings);
            }
        }
    }
    if flags.timing {
        for w in toks.windows(3) {
            if w[0].is_ident("Instant") && w[1].is_punct("::") && w[2].is_ident("now") {
                push_tok(w[0].line, Rule::AdHocTiming, &mut findings);
            }
        }
    }
    if flags.arith && !flags.fail_fast_bin {
        let invariant = crate::flow::invariant_mask(source);
        for site in crate::flow::scan_sites(&toks, &invariant) {
            if let Some(rule) = site.kind.lint_rule() {
                push_tok(site.line, rule, &mut findings);
            }
        }
    }
    if flags.kernel {
        let mut seen_lines = std::collections::BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if !(t.is_punct("==") || t.is_punct("!=")) {
                continue;
            }
            let lo = i.saturating_sub(8);
            let hi = (i + 9).min(toks.len());
            let floatish = toks[lo..hi].iter().any(|w| {
                w.line == t.line
                    && (w.kind == crate::rustlex::Kind::Float
                        || (w.kind == crate::rustlex::Kind::Ident
                            && matches!(
                                w.text.as_str(),
                                "f32" | "f64" | "EPSILON" | "INFINITY" | "NAN"
                            )))
            });
            if floatish && seen_lines.insert(t.line) {
                push_tok(t.line, Rule::FloatEq, &mut findings);
            }
        }
    }

    // ---- line-oriented rules ----
    // Stack of open braces; `true` marks a match-over-error block.
    let mut match_stack: Vec<bool> = Vec::new();
    for (idx, code) in code_lines.iter().enumerate() {
        let lineno = idx + 1;
        let excerpt = || {
            raw_lines
                .get(idx)
                .map_or(String::new(), |l| l.trim().to_string())
        };
        let mut push = |rule: Rule| {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule,
                excerpt: excerpt(),
            })
        };
        let masked = mask[idx];
        if !masked {
            if has_word(code, "panic!")
                || has_word(code, "todo!")
                || has_word(code, "unimplemented!")
            {
                push(Rule::NoPanic);
            }
            if has_word(code, "unsafe") {
                let lo = idx.saturating_sub(3);
                let nearby_safety = raw_lines[lo..=idx].iter().any(|l| l.contains("SAFETY:"));
                if !nearby_safety {
                    push(Rule::UnsafeNoSafety);
                }
            }
            let trimmed = code.trim_start();
            if (trimmed.starts_with("_ =>") || trimmed.starts_with("_ if "))
                && match_stack.last() == Some(&true)
            {
                push(Rule::WildcardErrorMatch);
            }
        }
        // Track match-over-error blocks (even inside test code, so the
        // stack stays balanced).
        let mut err_match_pending =
            has_word(code, "match") && !masked && (code.contains("Error") || code.contains("Err("));
        for c in code.chars() {
            match c {
                '{' => {
                    match_stack.push(err_match_pending);
                    err_match_pending = false;
                }
                '}' => {
                    match_stack.pop();
                }
                _ => {}
            }
        }
    }
    findings.sort_by_key(|f| (f.line, rule_order(f.rule)));
    findings
}

/// The lint run's aggregate result.
#[derive(Debug)]
pub struct LintOutcome {
    /// Unwaived findings (the run fails if non-empty).
    pub findings: Vec<Finding>,
    /// Findings suppressed by baseline waivers.
    pub waived: Vec<Finding>,
    /// Baseline entries that matched nothing (the run fails if non-empty:
    /// a stale waiver hides drift).
    pub unused_waivers: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_waivers.is_empty()
    }
}

/// Source roots linted by default, relative to the repo root.
pub const DEFAULT_ROOTS: [&str; 3] = ["crates", "compat", "src"];

/// Path prefixes where the float-comparison rule applies: the distance /
/// weight / graph kernel crates.
pub const KERNEL_PREFIXES: [&str; 3] = [
    "crates/vector/src",
    "crates/weights/src",
    "crates/graph/src",
];

/// Path prefixes exempt from the ad-hoc-timing rule: the bench harness
/// measures raw iteration clocks by design, and `mqa-obs` is the timing
/// API's own implementation.
pub const TIMING_EXEMPT_PREFIXES: [&str; 2] = ["crates/bench", "crates/obs"];

/// Path prefixes where the arithmetic-safety rules (no-index-panic,
/// no-lossy-cast, no-raw-div) apply: the crates a serving worker executes
/// per query. `cast.rs` (the checked-conversion helper module, which owns
/// its narrowing casts behind documented invariants) is exempt.
pub const SERVING_PREFIXES: [&str; 5] = [
    "crates/graph/src",
    "crates/vector/src",
    "crates/cache/src",
    "crates/engine/src",
    "crates/retrieval/src",
];

/// Directory names never descended into: test code may unwrap freely, and
/// fixtures contain violations on purpose.
const SKIP_DIRS: [&str; 5] = ["tests", "benches", "fixtures", "target", ".git"];

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks the workspace sources under `repo_root`, lints every `.rs` file
/// outside test/bench/fixture directories, and applies `baseline` waivers.
///
/// # Errors
/// Returns a message if a directory or file cannot be read.
pub fn run(repo_root: &Path, baseline: &Baseline) -> Result<LintOutcome, String> {
    let mut files = Vec::new();
    for root in DEFAULT_ROOTS {
        let dir = repo_root.join(root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        // A gate that scans nothing passes vacuously — treat it as a
        // misconfiguration (typo'd --root) instead.
        return Err(format!(
            "no .rs sources found under {} (looked in {})",
            repo_root.display(),
            DEFAULT_ROOTS.join(", ")
        ));
    }
    files.sort();
    let mut all = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let flags = LintFlags {
            kernel: KERNEL_PREFIXES.iter().any(|p| rel.starts_with(p)),
            timing: !TIMING_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p)),
            arith: SERVING_PREFIXES.iter().any(|p| rel.starts_with(p))
                && !rel.ends_with("/cast.rs"),
            fail_fast_bin: rel.starts_with("src/bin/") || rel.contains("/src/bin/"),
        };
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        all.extend(lint_source(&rel, &source, &flags));
    }
    let mut used = vec![0usize; baseline.waivers.len()];
    let mut findings = Vec::new();
    let mut waived = Vec::new();
    for f in all {
        let hit = baseline.matching(&f).next();
        match hit {
            Some(i) => {
                used[i] += 1;
                waived.push(f);
            }
            None => findings.push(f),
        }
    }
    let unused_waivers = baseline
        .waivers
        .iter()
        .zip(&used)
        .filter(|(_, &u)| u == 0)
        .map(|(w, _)| w.describe())
        .collect();
    Ok(LintOutcome {
        findings,
        waived,
        unused_waivers,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_and_strings() {
        let src = "let x = \"panic!\"; // panic!\nlet y = 'a'; /* .unwrap() */ let z = 1;";
        let s = strip(src);
        assert!(!s.contains("panic!"));
        assert!(!s.contains(".unwrap()"));
        assert!(s.contains("let z = 1;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\".unwrap()\"#; }";
        let s = strip(src);
        assert!(!s.contains(".unwrap()"));
        assert!(s.contains("fn f<'a>(x: &'a str)"));
    }

    /// Regression: a string line-continuation (`\` before the newline)
    /// used to swallow the newline during stripping, so every line after
    /// it mapped to the wrong mask slot and `#[cfg(test)]` items further
    /// down leaked spurious no-unwrap/no-expect findings.
    #[test]
    fn string_line_continuation_keeps_mask_aligned() {
        let src = "fn f() -> String {\n    format!(\n        \"two-line \\\n         message\"\n    )\n}\n#[cfg(test)]\nmod tests {\n    fn b() { x.expect(\"fine in tests\"); }\n}\n";
        assert_eq!(strip(src).lines().count(), src.lines().count());
        assert!(lint_source("f.rs", src, &flags(false, false)).is_empty());
    }

    #[test]
    fn test_mask_covers_cfg_test_items() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let mask = test_mask(&strip(src));
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    fn flags(kernel: bool, timing: bool) -> LintFlags {
        LintFlags {
            kernel,
            timing,
            arith: false,
            fail_fast_bin: false,
        }
    }

    #[test]
    fn unwrap_in_test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\n";
        assert!(lint_source("f.rs", src, &flags(false, false)).is_empty());
    }

    #[test]
    fn unwrap_split_across_lines_still_fires() {
        let src = "fn f() {\n    compute_the_thing(a, b)\n        .unwrap\n        ();\n}\n";
        let found = lint_source("f.rs", src, &flags(false, false));
        assert_eq!(found.len(), 1);
        assert_eq!((found[0].line, found[0].rule), (3, Rule::NoUnwrap));
    }

    #[test]
    fn fail_fast_bin_exempts_unwrap_and_expect_only() {
        let src = "fn main() { x.unwrap(); y.expect(\"msg\"); panic!(\"still caught\"); }\n";
        let bin = LintFlags {
            fail_fast_bin: true,
            ..LintFlags::default()
        };
        let found = lint_source("src/bin/f.rs", src, &bin);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NoPanic);
        assert_eq!(lint_source("f.rs", src, &LintFlags::default()).len(), 3);
    }

    #[test]
    fn float_eq_only_fires_in_kernel_files() {
        let src = "fn f(a: f32, b: f32) -> bool { a == b }\n";
        assert!(lint_source("f.rs", src, &flags(false, false)).is_empty());
        let found = lint_source("f.rs", src, &flags(true, false));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::FloatEq);
    }

    #[test]
    fn integer_comparison_is_not_a_float_eq() {
        let src = "fn f(a: usize, b: usize) -> bool { a == b && a != 3 }\n";
        assert!(lint_source("f.rs", src, &flags(true, false)).is_empty());
    }

    #[test]
    fn float_eq_ignores_floats_on_other_lines() {
        let src = "fn f(a: usize, w: f32) -> bool {\n    let _ = w * 2.0;\n    a == 3\n}\n";
        assert!(lint_source("f.rs", src, &flags(true, false)).is_empty());
    }

    #[test]
    fn ad_hoc_timing_only_fires_with_timing_flag() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t.elapsed(); }\n";
        assert!(lint_source("f.rs", src, &flags(false, false)).is_empty());
        let found = lint_source("f.rs", src, &flags(false, true));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::AdHocTiming);
    }
}
