//! Panic-freedom analysis (`mqa-xtask flow`).
//!
//! A whole-workspace, two-pass call-graph analysis over [`crate::rustlex`]
//! token streams that proves the hot serving path cannot panic. The
//! generic inventory/resolution/reachability machinery lives in
//! [`crate::callgraph`] (shared with the allocation-freedom analysis in
//! [`crate::alloc`]); this module owns the panic-specific parts:
//!
//! 1. **Inventory** — every *panic-capable site*: `unwrap`/`expect`, the
//!    `panic!`/`todo!`/`unimplemented!`/`unreachable!` macros, the
//!    `assert!` family, direct slice/Vec `[...]` indexing, non-literal
//!    integer `/` and `%`, and narrowing `as` casts (value-corrupting
//!    rather than panicking — inventoried and linted, but excluded from
//!    the reachability cone). The `debug_assert!` family is *not*
//!    counted: it compiles out of release serving builds, and
//!    `overflow-checks` owns the debug run.
//! 2. **Reachability** — the panic cone is computed from the designated
//!    serving entry points ([`ENTRY_POINTS`]): `QueryEngine::{submit,
//!    try_submit,retrieve,retrieve_batch}`, the `MqaSystem`/
//!    `DialogueSession` turn path, every `GraphSearcher::search_with`
//!    impl, and `PageCache`/`ResultCache` lookups. Any panic-capable
//!    site inside a reachable function is a [`Rule::ReachablePanic`]
//!    finding unless waived in `flow-baseline.toml` (same machinery as
//!    `lint-baseline.toml`, mandatory reasons, stale-waiver detection).
//!
//! Indexing and division sites can alternatively be *discharged in
//! source* with an adjacent `// INVARIANT:` comment documenting why the
//! bound holds — the analogue of `// SAFETY:` for `unsafe`. `unwrap`/
//! `expect`/`panic!`/`assert!` have no comment escape: on the serving
//! path they are either rewritten as typed errors or waived with a
//! reason.
//!
//! Three token-accurate lint rules — `no-index-panic`, `no-lossy-cast`,
//! `no-raw-div` — ride on the same site scanner via
//! [`crate::lint::LintFlags::arith`], scoped to the serving crates
//! ([`crate::lint::SERVING_PREFIXES`]), `#[cfg(test)]`-masked and
//! bin-exempt like every other rule.

use crate::baseline::Baseline;
use crate::callgraph::{
    self, build_cone, discharge_mask, is_keyword, EntryOwner, EntryPoint, Inventory,
};
use crate::lint::{collect_rs_files, strip, test_mask, Finding, Rule, DEFAULT_ROOTS};
use crate::rustlex::{lex, Kind, Tok};
use std::collections::BTreeSet;
use std::path::Path;

/// What kind of panic-capable (or value-corrupting) construct a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `panic!` / `todo!` / `unimplemented!` / `unreachable!`.
    PanicMacro,
    /// `assert!` / `assert_eq!` / `assert_ne!`.
    AssertMacro,
    /// Direct `expr[…]` indexing.
    Index,
    /// Integer `/` or `%` with a non-literal (or zero-literal) divisor.
    RawDiv,
    /// A narrowing `as` cast (`usize as u32`, `f64 as f32`, …). Does not
    /// panic — it silently truncates — so it is linted and inventoried
    /// but not part of the reachability cone.
    LossyCast,
}

impl SiteKind {
    /// The lint rule this site kind surfaces as, for the kinds the
    /// arithmetic-safety lints own (unwrap/expect/panic are already
    /// covered by the original rules).
    pub fn lint_rule(self) -> Option<Rule> {
        match self {
            SiteKind::Index => Some(Rule::NoIndexPanic),
            SiteKind::LossyCast => Some(Rule::NoLossyCast),
            SiteKind::RawDiv => Some(Rule::NoRawDiv),
            _ => None,
        }
    }

    /// Whether the construct can abort the thread (drives the cone).
    pub fn can_panic(self) -> bool {
        !matches!(self, SiteKind::LossyCast)
    }

    /// Short display name used in finding excerpts.
    pub fn describe(self) -> &'static str {
        match self {
            SiteKind::Unwrap => "unwrap",
            SiteKind::Expect => "expect",
            SiteKind::PanicMacro => "panic-macro",
            SiteKind::AssertMacro => "assert",
            SiteKind::Index => "indexing",
            SiteKind::RawDiv => "raw-div",
            SiteKind::LossyCast => "lossy-cast",
        }
    }
}

/// One panic-capable site.
pub type Site = callgraph::Site<SiteKind>;

/// Per-line mask from the *raw* source: `true` where an `// INVARIANT:`
/// comment on the same line or up to three lines above discharges an
/// indexing/division/cast site (the `// SAFETY:` idiom for arithmetic).
/// See [`callgraph::discharge_mask`] for the window semantics.
pub fn invariant_mask(source: &str) -> Vec<bool> {
    discharge_mask(source, "INVARIANT:")
}

/// Bit width and domain of a primitive numeric type name. `usize`/`isize`
/// count as 64-bit: every supported target is 64-bit, and assuming
/// narrower would hide real truncation on the deploy targets.
fn prim_bits(name: &str) -> Option<(u32, char)> {
    Some(match name {
        "u8" => (8, 'u'),
        "u16" => (16, 'u'),
        "u32" => (32, 'u'),
        "u64" | "usize" => (64, 'u'),
        "i8" => (8, 'i'),
        "i16" => (16, 'i'),
        "i32" => (32, 'i'),
        "i64" | "isize" => (64, 'i'),
        "f32" => (32, 'f'),
        "f64" => (64, 'f'),
        _ => return None,
    })
}

/// Targets the lossy-cast rule watches. Wider targets (`u64`, `usize`,
/// `i64`, `f64`) are excluded: without type inference the ubiquitous
/// `u32 as usize` widening would swamp the rule with false positives,
/// while `usize as u32` — the truncation direction that actually loses
/// node ids — is caught.
fn narrow_target(name: &str) -> bool {
    matches!(name, "u8" | "u16" | "u32" | "i8" | "i16" | "i32" | "f32")
}

/// Parses an integer literal's value (decimal/hex/binary/octal,
/// underscores and type suffixes tolerated).
fn int_literal_value(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(h) = t.strip_prefix("0x") {
        (16, h)
    } else if let Some(b) = t.strip_prefix("0b") {
        (2, b)
    } else if let Some(o) = t.strip_prefix("0o") {
        (8, o)
    } else {
        (10, t.as_str())
    };
    let digits: String = digits
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();
    u128::from_str_radix(&digits, radix).ok()
}

/// Whether an integer of `value` survives a cast to `target` unchanged.
fn literal_fits(value: u128, target: &str) -> bool {
    match target {
        "u8" => value <= u128::from(u8::MAX),
        "u16" => value <= u128::from(u16::MAX),
        "u32" => value <= u128::from(u32::MAX),
        "i8" => value <= 0x7f,
        "i16" => value <= 0x7fff,
        "i32" => value <= 0x7fff_ffff,
        // f32 represents every integer up to 2^24 exactly.
        "f32" => value <= (1 << 24),
        _ => false,
    }
}

/// Whether a cast between *known* primitive type names is lossless:
/// same domain and non-narrowing, or an integer small enough to fit the
/// float target's mantissa exactly (24 bits for f32, 53 for f64).
fn cast_lossless(src: &str, target: &str) -> bool {
    let (Some((sb, sd)), Some((tb, td))) = (prim_bits(src), prim_bits(target)) else {
        return false;
    };
    match (sd, td) {
        ('u', 'u') | ('i', 'i') | ('f', 'f') => sb <= tb,
        ('u', 'i') => sb < tb,
        ('u', 'f') | ('i', 'f') => sb <= if tb == 32 { 16 } else { 32 },
        _ => false,
    }
}

/// Identifiers declared as `f32`/`f64` anywhere in the stream — by
/// `name: f32` annotation (params, fields, locals) or `let name = <float
/// literal>`. File-granular rather than scope-granular: an over-wide but
/// deterministic exemption set for the raw-div rule, sound because float
/// division cannot panic.
fn float_idents<'t>(toks: &[&'t Tok]) -> BTreeSet<&'t str> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == Kind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let mut j = i + 2;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct("&") || t.is_ident("mut") || t.kind == Kind::Lifetime)
            {
                j += 1;
            }
            if toks
                .get(j)
                .is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"))
            {
                out.insert(t.text.as_str());
            }
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == Kind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct("="))
                && toks.get(j + 2).is_some_and(|t| t.kind == Kind::Float)
            {
                out.insert(toks[j].text.as_str());
            }
        }
    }
    out
}

/// Scans a (test-masked) token stream for panic-capable sites.
/// `invariant` is the per-raw-line [`invariant_mask`]; indexing,
/// division, and cast sites on exempted lines are discharged.
pub fn scan_sites(toks: &[&Tok], invariant: &[bool]) -> Vec<Site> {
    let exempt = |line: usize| invariant.get(line - 1).copied().unwrap_or(false);
    let floats = float_idents(toks);
    let is_float_ident = |t: &Tok| t.kind == Kind::Ident && floats.contains(t.text.as_str());
    let mut sites = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let prev = i.checked_sub(1).map(|p| toks[p]);
        let next = toks.get(i + 1);
        match t.kind {
            Kind::Ident => {
                let name = t.text.as_str();
                // `.unwrap()` / `.expect(`.
                if prev.is_some_and(|p| p.is_punct(".")) {
                    if name == "unwrap"
                        && next.is_some_and(|n| n.is_punct("("))
                        && toks.get(i + 2).is_some_and(|n| n.is_punct(")"))
                    {
                        sites.push(Site {
                            kind: SiteKind::Unwrap,
                            line: t.line,
                            tok: i,
                        });
                    } else if name == "expect" && next.is_some_and(|n| n.is_punct("(")) {
                        sites.push(Site {
                            kind: SiteKind::Expect,
                            line: t.line,
                            tok: i,
                        });
                    }
                }
                // Panic/assert macros.
                if next.is_some_and(|n| n.is_punct("!"))
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.is_punct("(") || n.is_punct("["))
                {
                    match name {
                        "panic" | "todo" | "unimplemented" | "unreachable" => {
                            sites.push(Site {
                                kind: SiteKind::PanicMacro,
                                line: t.line,
                                tok: i,
                            });
                        }
                        "assert" | "assert_eq" | "assert_ne" => {
                            sites.push(Site {
                                kind: SiteKind::AssertMacro,
                                line: t.line,
                                tok: i,
                            });
                        }
                        _ => {}
                    }
                }
                // `<expr> as <narrow>` casts.
                if name == "as" && !exempt(t.line) {
                    if let Some(n) = next {
                        if n.kind == Kind::Ident && narrow_target(&n.text) {
                            let lossless = prev.is_some_and(|p| match p.kind {
                                Kind::Int => int_literal_value(&p.text)
                                    .is_some_and(|v| literal_fits(v, &n.text)),
                                Kind::Float => n.text == "f32",
                                Kind::Ident => {
                                    p.text == "true"
                                        || p.text == "false"
                                        || cast_lossless(&p.text, &n.text)
                                }
                                _ => false,
                            });
                            if !lossless {
                                sites.push(Site {
                                    kind: SiteKind::LossyCast,
                                    line: t.line,
                                    tok: i,
                                });
                            }
                        }
                    }
                }
            }
            Kind::Punct if t.text == "[" => {
                // Indexing: `[` directly after a value expression.
                let indexing = prev.is_some_and(|p| {
                    (p.kind == Kind::Ident && !is_keyword(&p.text))
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
                if indexing && !exempt(t.line) {
                    sites.push(Site {
                        kind: SiteKind::Index,
                        line: t.line,
                        tok: i,
                    });
                }
            }
            Kind::Punct if t.text == "/" || t.text == "%" => {
                if exempt(t.line) {
                    continue;
                }
                // The previous token must end a value expression.
                let value_before = prev.is_some_and(|p| {
                    matches!(p.kind, Kind::Int | Kind::Float)
                        || (p.kind == Kind::Ident && !is_keyword(&p.text))
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
                if !value_before {
                    continue;
                }
                // Float arithmetic cannot panic.
                if prev.is_some_and(|p| p.kind == Kind::Float || is_float_ident(p)) {
                    continue;
                }
                match next {
                    Some(n) if n.kind == Kind::Float => {}
                    Some(n) if is_float_ident(n) => {}
                    Some(n) if n.kind == Kind::Int => {
                        // A nonzero literal divisor cannot panic; `/ 0`
                        // is an unconditional panic and always flagged.
                        if int_literal_value(&n.text) == Some(0) {
                            sites.push(Site {
                                kind: SiteKind::RawDiv,
                                line: t.line,
                                tok: i,
                            });
                        }
                    }
                    _ => {
                        // Non-literal divisor: exempt clear float context
                        // (a float literal or f32/f64 on the same line,
                        // e.g. `sum / count as f32`).
                        let lo = i.saturating_sub(6);
                        let hi = (i + 7).min(toks.len());
                        let floatish = toks[lo..hi].iter().any(|w| {
                            w.line == t.line
                                && (w.kind == Kind::Float
                                    || (w.kind == Kind::Ident
                                        && matches!(w.text.as_str(), "f32" | "f64")))
                        });
                        if !floatish {
                            sites.push(Site {
                                kind: SiteKind::RawDiv,
                                line: t.line,
                                tok: i,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    sites
}

/// The serving path's designated roots: engine submission and retrieval,
/// the dialogue turn path, every `GraphSearcher::search_with` impl, and
/// both cache lookup surfaces.
pub const ENTRY_POINTS: [EntryPoint; 10] = [
    EntryPoint {
        owner: EntryOwner::Named("QueryEngine"),
        name: "submit",
    },
    EntryPoint {
        owner: EntryOwner::Named("QueryEngine"),
        name: "try_submit",
    },
    EntryPoint {
        owner: EntryOwner::Named("QueryEngine"),
        name: "retrieve",
    },
    EntryPoint {
        owner: EntryOwner::Named("QueryEngine"),
        name: "retrieve_batch",
    },
    EntryPoint {
        owner: EntryOwner::Named("DialogueSession"),
        name: "ask",
    },
    EntryPoint {
        owner: EntryOwner::Named("MqaSystem"),
        name: "ask_once",
    },
    EntryPoint {
        owner: EntryOwner::AnyImpl,
        name: "search_with",
    },
    EntryPoint {
        owner: EntryOwner::Named("PageCache"),
        name: "probe",
    },
    EntryPoint {
        owner: EntryOwner::Named("ResultCache"),
        name: "get",
    },
    EntryPoint {
        owner: EntryOwner::Named("ResultCache"),
        name: "insert",
    },
];

/// Aggregate statistics of one analysis run.
#[derive(Debug, Default, Clone)]
pub struct FlowStats {
    /// Functions inventoried.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Entry-point functions found.
    pub entry_fns: usize,
    /// Functions reachable from an entry point.
    pub reachable_fns: usize,
    /// Panic-capable sites in reachable functions (the cone, pre-waiver).
    pub cone_sites: usize,
    /// Lossy-cast sites inventoried workspace-wide (lint-only).
    pub lossy_casts: usize,
}

/// The raw analysis result, before baseline waivers.
#[derive(Debug, Default)]
pub struct FlowAnalysis {
    /// Cone findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Run statistics.
    pub stats: FlowStats,
}

/// Runs the analysis over in-memory `(repo-relative path, source)` pairs.
/// Unit tests and the mutation fixture enter here.
pub fn analyze_sources(files: &[(String, String)]) -> FlowAnalysis {
    let mut inv: Inventory<SiteKind> =
        Inventory::for_files(files.iter().map(|(rel, _)| rel.clone()).collect());
    for (fi, (rel, source)) in files.iter().enumerate() {
        // Experiment binaries abort by design; they are not serving code.
        if rel.contains("/src/bin/") {
            continue;
        }
        let mask = test_mask(&strip(source));
        let toks = lex(source);
        let kept: Vec<&Tok> = toks
            .iter()
            .filter(|t| !mask.get(t.line - 1).copied().unwrap_or(false))
            .collect();
        let invariant = invariant_mask(source);
        let sites = scan_sites(&kept, &invariant);
        callgraph::scan_file(fi, &kept, sites, &mut inv);
    }

    let cone = build_cone(&inv, &ENTRY_POINTS);

    let mut findings = Vec::new();
    let mut cone_sites = 0usize;
    let mut lossy = 0usize;
    for (id, f) in inv.fns.iter().enumerate() {
        lossy += f
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::LossyCast)
            .count();
        if !cone.reached[id] {
            continue;
        }
        for s in &f.sites {
            if !s.kind.can_panic() {
                continue;
            }
            cone_sites += 1;
            let (rel, source) = &files[f.file];
            let src_line = source
                .lines()
                .nth(s.line - 1)
                .map_or(String::new(), |l| l.trim().to_string());
            findings.push(Finding {
                file: rel.clone(),
                line: s.line,
                rule: Rule::ReachablePanic,
                excerpt: format!(
                    "{src_line} [{} in {}; via {}]",
                    s.kind.describe(),
                    f.display(),
                    cone.path_to(&inv, id)
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    FlowAnalysis {
        findings,
        stats: FlowStats {
            fns: inv.fns.len(),
            edges: cone.edges,
            entry_fns: cone.entries.len(),
            reachable_fns: cone.reachable_fns(),
            cone_sites,
            lossy_casts: lossy,
        },
    }
}

/// The flow run's aggregate result (mirror of `conc::ConcOutcome`).
#[derive(Debug)]
pub struct FlowOutcome {
    /// Unwaived cone findings (the gate fails if non-empty).
    pub findings: Vec<Finding>,
    /// Findings suppressed by baseline waivers.
    pub waived: Vec<Finding>,
    /// Baseline entries that matched nothing (stale waivers fail the gate).
    pub unused_waivers: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Analysis statistics.
    pub stats: FlowStats,
}

impl FlowOutcome {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_waivers.is_empty()
    }
}

/// Loads the workspace sources exactly as the lint/conc gates do.
///
/// # Errors
/// Returns a message if a directory or file cannot be read.
pub fn load_workspace_sources(repo_root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for root in DEFAULT_ROOTS {
        let dir = repo_root.join(root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(repo_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        out.push((rel, source));
    }
    Ok(out)
}

/// Runs the panic-freedom analysis over the whole workspace, applying
/// `baseline` waivers (default file: `flow-baseline.toml`).
///
/// # Errors
/// Returns a message if a directory or file cannot be read.
pub fn run(repo_root: &Path, baseline: &Baseline) -> Result<FlowOutcome, String> {
    let sources = load_workspace_sources(repo_root)?;
    let files_scanned = sources.len();
    let mut analysis = analyze_sources(&sources);
    let all = std::mem::take(&mut analysis.findings);
    let mut used = vec![0usize; baseline.waivers.len()];
    let mut findings = Vec::new();
    let mut waived = Vec::new();
    for f in all {
        let hit = baseline.matching(&f).next();
        match hit {
            Some(i) => {
                used[i] += 1;
                waived.push(f);
            }
            None => findings.push(f),
        }
    }
    let unused_waivers = baseline
        .waivers
        .iter()
        .zip(&used)
        .filter(|(_, &u)| u == 0)
        .map(|(w, _)| w.describe())
        .collect();
    Ok(FlowOutcome {
        findings,
        waived,
        unused_waivers,
        files_scanned,
        stats: analysis.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites_of(src: &str) -> Vec<(SiteKind, usize)> {
        let toks = lex(src);
        let kept: Vec<&Tok> = toks.iter().collect();
        let invariant = invariant_mask(src);
        scan_sites(&kept, &invariant)
            .into_iter()
            .map(|s| (s.kind, s.line))
            .collect()
    }

    #[test]
    fn index_sites_fire_on_expressions_not_patterns_or_types() {
        let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    let [a, b] = [1u32, 2];
    let t: [u32; 2] = [a, b];
    let x = v[i];
    x + t[0] + helper(v)[1]
}
";
        assert_eq!(
            sites_of(src),
            vec![
                (SiteKind::Index, 4),
                (SiteKind::Index, 5),
                (SiteKind::Index, 5)
            ]
        );
    }

    #[test]
    fn invariant_comment_discharges_nearby_sites_only() {
        let src = "\
fn f(v: &[u32], i: usize, n: usize) -> u32 {
    // INVARIANT: i was range-checked by the caller's validate() above.
    let x = v[i];
    let a = x + 1;
    let b = a + 1;
    b % n
}
";
        assert_eq!(sites_of(src), vec![(SiteKind::RawDiv, 6)]);
    }

    #[test]
    fn raw_div_exempts_literal_and_float_divisors() {
        let src = "\
fn f(a: usize, b: usize, w: f32, s: f32) -> f32 {
    let q = a / 8;
    let r = a % b;
    let z = a / 0;
    w / s
}
";
        assert_eq!(
            sites_of(src),
            vec![(SiteKind::RawDiv, 3), (SiteKind::RawDiv, 4)]
        );
    }

    #[test]
    fn lossy_cast_catches_narrowing_not_widening() {
        let src = "\
fn f(n: usize, v: f64) -> u32 {
    let id = n as u32;
    let w = n as u8 as u32;
    let t = v as f32;
    let k = 255 as u8;
    let big = id as u64;
    id
}
";
        assert_eq!(
            sites_of(src),
            vec![
                (SiteKind::LossyCast, 2),
                (SiteKind::LossyCast, 3),
                (SiteKind::LossyCast, 4)
            ]
        );
    }

    #[test]
    fn unwrap_expect_and_macros_are_sites() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    assert!(o.is_some());
    let v = o.unwrap();
    let w = o.expect(\"present\");
    if v > w { panic!(\"nope\") }
    v
}
";
        let kinds: Vec<SiteKind> = sites_of(src).into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            kinds,
            vec![
                SiteKind::AssertMacro,
                SiteKind::Unwrap,
                SiteKind::Expect,
                SiteKind::PanicMacro
            ]
        );
    }

    #[test]
    fn debug_assert_is_not_a_site() {
        let src = "fn f(x: u32) { debug_assert!(x > 0); debug_assert_eq!(x, x); }";
        assert!(sites_of(src).is_empty());
    }

    fn analyze(files: &[(&str, &str)]) -> FlowAnalysis {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        analyze_sources(&owned)
    }

    const ENGINE_LIKE: &str = "\
pub struct QueryEngine { pool: Pool }
impl QueryEngine {
    pub fn submit(&self) -> u32 {
        self.pool.dispatch()
    }
}
pub struct Pool;
impl Pool {
    pub fn dispatch(&self) -> u32 {
        risky_helper(3)
    }
}
fn risky_helper(x: u32) -> u32 {
    let v = vec![1, 2, 3];
    v.get(0).copied().unwrap()
}
fn unreached_helper() -> u32 {
    let v: Option<u32> = None;
    v.unwrap()
}
";

    #[test]
    fn reachable_unwrap_is_found_and_unreachable_is_not() {
        let a = analyze(&[("x/src/engine.rs", ENGINE_LIKE)]);
        assert_eq!(a.findings.len(), 1, "findings: {:?}", a.findings);
        let f = &a.findings[0];
        assert_eq!(f.line, 15);
        assert_eq!(f.rule, Rule::ReachablePanic);
        assert!(f.excerpt.contains("risky_helper"), "{}", f.excerpt);
        assert!(f.excerpt.contains("QueryEngine::submit"), "{}", f.excerpt);
        assert!(a.stats.entry_fns >= 1);
        assert!(a.stats.reachable_fns >= 3);
    }

    #[test]
    fn trait_dispatch_reaches_every_impl() {
        let src = "\
pub struct QueryEngine { framework: Arc<dyn Framework> }
pub trait Framework {
    fn search(&self, k: usize) -> u32;
}
impl QueryEngine {
    pub fn submit(&self, k: usize) -> u32 {
        self.framework.search(k)
    }
}
struct A;
impl Framework for A {
    fn search(&self, k: usize) -> u32 {
        let v = vec![0u32];
        v[k]
    }
}
";
        let a = analyze(&[("x/src/t.rs", src)]);
        assert_eq!(a.findings.len(), 1, "findings: {:?}", a.findings);
        assert_eq!(a.findings[0].line, 14);
        assert!(a.findings[0].excerpt.contains("indexing"));
    }

    #[test]
    fn cross_file_calls_resolve() {
        let caller = "\
pub struct DialogueSession;
impl DialogueSession {
    pub fn ask(&self) -> u32 {
        crate::deep::lookup(7)
    }
}
";
        let callee = "\
pub fn lookup(i: usize) -> u32 {
    TABLE[i]
}
static TABLE: [u32; 4] = [0, 1, 2, 3];
";
        let a = analyze(&[("x/src/sess.rs", caller), ("x/src/deep.rs", callee)]);
        assert_eq!(a.findings.len(), 1, "findings: {:?}", a.findings);
        assert_eq!(a.findings[0].file, "x/src/deep.rs");
        assert_eq!(a.findings[0].line, 2);
    }

    #[test]
    fn test_code_and_bins_are_exempt() {
        let masked = format!("#[cfg(test)]\nmod tests {{\n{ENGINE_LIKE}\n}}\n");
        let a = analyze(&[("x/src/engine.rs", &masked)]);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
        let b = analyze(&[("x/src/bin/exp.rs", ENGINE_LIKE)]);
        assert!(b.findings.is_empty(), "findings: {:?}", b.findings);
    }

    #[test]
    fn arity_disambiguates_method_fallback() {
        // Two `lookup` methods with different arity: the 1-arg call on an
        // untyped receiver must not pull in the 2-arg impl's panic site.
        let src = "\
pub struct ResultCache;
impl ResultCache {
    pub fn get(&self, k: u64) -> u32 {
        helper().lookup(k)
    }
}
struct Clean;
impl Clean {
    fn lookup(&self, _k: u64) -> u32 { 0 }
}
struct Dirty;
impl Dirty {
    fn lookup(&self, _k: u64, _extra: u64) -> u32 {
        panic!(\"two-arg\")
    }
}
fn helper() -> Clean { Clean }
";
        let a = analyze(&[("x/src/c.rs", src)]);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn typed_local_receiver_resolves_precisely() {
        let src = "\
pub struct PageCache;
impl PageCache {
    pub fn probe(&self) -> u32 {
        let shard = Shard::new();
        shard.touch()
    }
}
struct Shard;
impl Shard {
    fn new() -> Shard { Shard }
    fn touch(&self) -> u32 { 1 }
}
struct Other;
impl Other {
    fn touch(&self) -> u32 {
        panic!(\"wrong receiver\")
    }
}
";
        let a = analyze(&[("x/src/p.rs", src)]);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }

    #[test]
    fn self_field_type_resolves_method() {
        let src = "\
pub struct QueryEngine { pool: WorkerPool }
impl QueryEngine {
    pub fn submit(&self) -> u32 {
        self.pool.go()
    }
}
pub struct WorkerPool;
impl WorkerPool {
    fn go(&self) -> u32 {
        unimplemented!()
    }
}
";
        let a = analyze(&[("x/src/e.rs", src)]);
        assert_eq!(a.findings.len(), 1, "findings: {:?}", a.findings);
        assert!(a.findings[0].excerpt.contains("panic-macro"));
    }

    #[test]
    fn lossy_casts_are_inventoried_but_not_cone_findings() {
        let src = "\
pub struct PageCache;
impl PageCache {
    pub fn probe(&self, n: usize) -> u32 {
        n as u32
    }
}
";
        let a = analyze(&[("x/src/p.rs", src)]);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
        assert_eq!(a.stats.lossy_casts, 1);
    }
}
