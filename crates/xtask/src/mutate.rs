//! The `mutate` command: the online-mutation gate.
//!
//! A seeded corpus is served by a 2-worker [`QueryEngine`] while the main
//! thread runs a scripted insert/delete mix through
//! [`MqaSystem::add_objects`] / [`MqaSystem::remove_objects`] — the
//! configuration the snapshot-publication refactor exists for. The gate
//! fails unless:
//!
//! * every query answered while a mutation batch was in flight contains
//!   only objects that were live when it was submitted, and every
//!   post-batch query excludes all tombstoned objects;
//! * the result-cache generation bumps exactly once per mutation batch;
//! * the delete volume crosses the compaction threshold at least once
//!   (so graph rewiring runs under live traffic);
//! * every `graph.mutate.*` instrument actually recorded.
//!
//! It writes `BENCH_mutate.json` under the output directory: insert and
//! delete throughput, and search p50/p99 during mutation vs quiesced —
//! the paper-facing evidence that readers are not stalled by writers.

use mqa_core::{Config, MqaSystem};
use mqa_engine::EngineOptions;
use mqa_kb::{DatasetSpec, ObjectRecord};
use mqa_retrieval::MultiModalQuery;
use mqa_vector::VecId;
use serde::Serialize;
use std::collections::HashSet;
use std::path::Path;

/// Workers serving queries while the writer mutates.
const WORKERS: usize = 2;
/// Result-set size for every query in the mix.
const K: usize = 10;
/// Beam width for every query in the mix.
const EF: usize = 64;
/// Objects in the seeded base corpus.
const BASE_OBJECTS: usize = 240;
/// Objects per insert batch (3 insert batches interleave with deletes).
const INSERT_BATCH: usize = 10;
/// Objects per delete batch — sized so the cumulative dead fraction
/// crosses the 0.2 compaction threshold on the final batch.
const DELETE_BATCH: usize = 20;
/// Interleaved mutation batches (even = insert, odd = delete).
const BATCHES: usize = 6;

/// The `BENCH_mutate.json` payload.
#[derive(Debug, Serialize)]
struct BenchMutate {
    inserted: usize,
    removed: usize,
    insert_per_sec: f64,
    delete_per_sec: f64,
    quiesced_p50_us: u64,
    quiesced_p99_us: u64,
    mutating_p50_us: u64,
    mutating_p99_us: u64,
    compactions: u64,
    final_epoch: u64,
    generation_bumps: u64,
    live_objects: usize,
}

/// What the gate measured, for the caller to print.
pub struct MutateOutcome {
    /// Objects inserted across all batches.
    pub inserted: usize,
    /// Objects tombstoned across all batches.
    pub removed: usize,
    /// Insert throughput (objects/s, index work only).
    pub insert_per_sec: f64,
    /// Delete throughput (objects/s, index work only).
    pub delete_per_sec: f64,
    /// Median search latency with no writer active.
    pub quiesced_p50_us: u64,
    /// Tail search latency with no writer active.
    pub quiesced_p99_us: u64,
    /// Median search latency for queries in flight during a batch.
    pub mutating_p50_us: u64,
    /// Tail search latency for queries in flight during a batch.
    pub mutating_p99_us: u64,
    /// Graph compactions triggered by the delete volume.
    pub compactions: u64,
    /// Index epoch after the full script (one publish per batch).
    pub final_epoch: u64,
    /// Result-cache generation bumps observed (one per batch).
    pub generation_bumps: u64,
    /// Queries checked for dead-object leakage.
    pub queries_checked: usize,
}

/// Runs the scripted mutation mix and writes `BENCH_mutate.json` and
/// `metrics.json` under `out_dir`.
///
/// # Errors
/// Returns a message when the system cannot be built, a mutation or
/// query fails, a dead object surfaces, the cache generation fails to
/// bump, an instrument stayed empty, or an artifact cannot be written.
pub fn run(out_dir: &Path, seed: u64) -> Result<MutateOutcome, String> {
    mqa_obs::global().reset();

    let kb = DatasetSpec::weather()
        .objects(BASE_OBJECTS)
        .concepts(8)
        .caption_noise(0.1)
        .seed(seed)
        .generate();
    // Insert donors come from the same generator family (same schema,
    // different seed) so online inserts look like real ingest traffic.
    let donor = DatasetSpec::weather()
        .objects(BATCHES / 2 * INSERT_BATCH)
        .concepts(8)
        .caption_noise(0.1)
        .seed(seed.wrapping_add(1))
        .generate();
    let donors: Vec<ObjectRecord> = donor.iter().map(|(_, r)| r.clone()).collect();

    let mut sys =
        MqaSystem::build(Config::default(), kb).map_err(|e| format!("build failed: {e}"))?;
    let cache = sys.enable_result_cache(64);
    let engine = sys.enable_engine(EngineOptions::with_workers(WORKERS));
    let queries: Vec<MultiModalQuery> = (0..12)
        .map(|i| {
            let title = &sys.corpus().kb().get(i * 17).title;
            let phrase = title.rsplit_once(" #").map_or(title.as_str(), |(p, _)| p);
            MultiModalQuery::text(phrase)
        })
        .collect();

    // Phase 1 — quiesced baseline: the same engine, no writer anywhere.
    let mut quiesced_us: Vec<u64> = Vec::new();
    for _ in 0..3 {
        for q in &queries {
            let sw = mqa_obs::Stopwatch::start();
            engine
                .retrieve(q.clone(), K, EF)
                .map_err(|e| format!("quiesced query failed: {e}"))?;
            quiesced_us.push(sw.elapsed_us());
        }
    }

    // Phase 2 — the scripted mix: queries are submitted, THEN the batch
    // mutates while the 2 workers drain them, then the tickets are
    // collected. Latencies therefore include any publication
    // interference; results must only contain objects live at submission.
    let mut killed: HashSet<VecId> = HashSet::new();
    let mut mutating_us: Vec<u64> = Vec::new();
    let mut queries_checked = 0usize;
    let (mut inserted, mut removed) = (0usize, 0usize);
    let (mut insert_us, mut delete_us) = (0u64, 0u64);
    let mut final_epoch = 0u64;
    let mut generation_bumps = 0u64;
    let mut delete_cursor: VecId = 0;

    for batch in 0..BATCHES {
        let generation_before = cache.generation();
        let dead_before: HashSet<VecId> = killed.clone();

        let tickets: Vec<(mqa_engine::Ticket<_>, mqa_obs::Stopwatch)> = queries
            .iter()
            .map(|q| {
                engine
                    .submit(q.clone(), K, EF)
                    .map(|t| (t, mqa_obs::Stopwatch::start()))
                    .map_err(|e| format!("batch {batch}: submit failed: {e}"))
            })
            .collect::<Result<_, _>>()?;

        let report = if batch % 2 == 0 {
            let from = batch / 2 * INSERT_BATCH;
            let records = &donors[from..from + INSERT_BATCH];
            let sw = mqa_obs::Stopwatch::start();
            let report = sys
                .add_objects(records)
                .map_err(|e| format!("batch {batch}: insert failed: {e}"))?;
            insert_us += sw.elapsed_us();
            inserted += report.applied;
            report
        } else {
            let len = sys.corpus().kb().len() as VecId;
            let mut ids: Vec<VecId> = Vec::with_capacity(DELETE_BATCH);
            while ids.len() < DELETE_BATCH {
                if !killed.contains(&delete_cursor) {
                    ids.push(delete_cursor);
                }
                delete_cursor = (delete_cursor + 1) % len;
            }
            let sw = mqa_obs::Stopwatch::start();
            let report = sys
                .remove_objects(&ids)
                .map_err(|e| format!("batch {batch}: delete failed: {e}"))?;
            delete_us += sw.elapsed_us();
            removed += report.applied;
            killed.extend(ids);
            report
        };
        final_epoch = report.epoch;

        for (ticket, sw) in tickets {
            let out = ticket
                .wait()
                .map_err(|e| format!("batch {batch}: in-flight query failed: {e}"))?;
            mutating_us.push(sw.elapsed_us());
            queries_checked += 1;
            for id in out.ids() {
                if dead_before.contains(&id) {
                    return Err(format!(
                        "mutate gate failed: batch {batch} surfaced object {id}, \
                         which was tombstoned before the query was submitted"
                    ));
                }
            }
        }

        let generation_after = cache.generation();
        if generation_after != generation_before + 1 {
            return Err(format!(
                "mutate gate failed: batch {batch} moved the result-cache \
                 generation {generation_before} -> {generation_after} \
                 (exactly one bump per mutation batch required)"
            ));
        }
        generation_bumps += generation_after - generation_before;

        // Post-batch sweep: with the publish complete, no query may
        // surface anything tombstoned so far.
        for q in &queries {
            let out = engine
                .retrieve(q.clone(), K, EF)
                .map_err(|e| format!("batch {batch}: post-batch query failed: {e}"))?;
            queries_checked += 1;
            for id in out.ids() {
                if killed.contains(&id) {
                    return Err(format!(
                        "mutate gate failed: dead object {id} surfaced after \
                         batch {batch} was published"
                    ));
                }
            }
        }
    }

    let snapshot = mqa_obs::global().snapshot();
    verify_instruments(&snapshot, inserted as u64, removed as u64)?;
    let compactions = snapshot.counter("graph.mutate.compactions").unwrap_or(0);
    if compactions == 0 {
        return Err(format!(
            "mutate gate failed: {removed} deletes over {} slots never \
             crossed the compaction threshold — the script must exercise \
             graph rewiring under live traffic",
            BASE_OBJECTS + inserted
        ));
    }

    let bench = BenchMutate {
        inserted,
        removed,
        insert_per_sec: per_second(inserted, insert_us),
        delete_per_sec: per_second(removed, delete_us),
        quiesced_p50_us: percentile(&mut quiesced_us, 50),
        quiesced_p99_us: percentile(&mut quiesced_us, 99),
        mutating_p50_us: percentile(&mut mutating_us, 50),
        mutating_p99_us: percentile(&mut mutating_us, 99),
        compactions,
        final_epoch,
        generation_bumps,
        live_objects: BASE_OBJECTS + inserted - removed,
    };
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let payload = serde_json::to_string_pretty(&bench)
        .map_err(|e| format!("serializing BENCH_mutate.json: {e}"))?;
    std::fs::write(out_dir.join("BENCH_mutate.json"), payload)
        .map_err(|e| format!("writing BENCH_mutate.json: {e}"))?;
    let metrics =
        serde_json::to_string_pretty(&snapshot).map_err(|e| format!("serializing metrics: {e}"))?;
    std::fs::write(out_dir.join("metrics.json"), metrics)
        .map_err(|e| format!("writing metrics.json: {e}"))?;

    Ok(MutateOutcome {
        inserted,
        removed,
        insert_per_sec: bench.insert_per_sec,
        delete_per_sec: bench.delete_per_sec,
        quiesced_p50_us: bench.quiesced_p50_us,
        quiesced_p99_us: bench.quiesced_p99_us,
        mutating_p50_us: bench.mutating_p50_us,
        mutating_p99_us: bench.mutating_p99_us,
        compactions,
        final_epoch,
        generation_bumps,
        queries_checked,
    })
}

/// Objects per second, guarding the zero-elapsed case.
fn per_second(objects: usize, elapsed_us: u64) -> f64 {
    objects as f64 / (elapsed_us.max(1) as f64 / 1e6)
}

/// The `p`-th percentile of `samples` (sorted in place).
fn percentile(samples: &mut [u64], p: usize) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    // INVARIANT: the rank is (len-1)*p/100 <= len-1, so the index is
    // always in bounds for a non-empty slice.
    samples[(samples.len() - 1) * p / 100]
}

/// The instrument self-checks: every mutation metric wired by the
/// snapshot-publication refactor must have actually recorded.
fn verify_instruments(
    snapshot: &mqa_obs::Snapshot,
    inserted: u64,
    removed: u64,
) -> Result<(), String> {
    let mut missing = Vec::new();
    match snapshot.counter("graph.mutate.inserts") {
        Some(v) if v == inserted => {}
        got => missing.push(format!(
            "counter `graph.mutate.inserts` expected {inserted}, got {got:?}"
        )),
    }
    match snapshot.counter("graph.mutate.deletes") {
        Some(v) if v == removed => {}
        got => missing.push(format!(
            "counter `graph.mutate.deletes` expected {removed}, got {got:?}"
        )),
    }
    match snapshot.histogram("graph.mutate.publish_us") {
        Some(h) if h.count > 0 => {}
        _ => missing.push("histogram `graph.mutate.publish_us` missing or empty".to_string()),
    }
    if snapshot
        .gauges
        .iter()
        .all(|g| g.name != "graph.mutate.dead_fraction")
    {
        missing.push("gauge `graph.mutate.dead_fraction` never set".to_string());
    }
    match snapshot.counter("cache.result.invalidations") {
        Some(v) if v > 0 => {}
        _ => missing.push("counter `cache.result.invalidations` missing or zero".to_string()),
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("mutate gate failed:\n  {}", missing.join("\n  ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_and_writes_bench() {
        let _serial = crate::scenario_lock();
        let dir =
            std::env::temp_dir().join(format!("mqa-xtask-mutate-test-{}", std::process::id()));
        let outcome = run(&dir, 42).expect("mutate gate must pass on a healthy tree");
        assert_eq!(outcome.inserted, 30);
        assert_eq!(outcome.removed, 60);
        assert_eq!(outcome.final_epoch, 6, "one publish per batch");
        assert_eq!(outcome.generation_bumps, 6, "one cache bump per batch");
        assert!(outcome.compactions >= 1);
        assert!(outcome.queries_checked >= BATCHES * 24);
        assert!(outcome.insert_per_sec > 0.0 && outcome.delete_per_sec > 0.0);
        let body = std::fs::read_to_string(dir.join("BENCH_mutate.json")).expect("bench readable");
        for field in [
            "insert_per_sec",
            "delete_per_sec",
            "quiesced_p99_us",
            "mutating_p99_us",
            "compactions",
        ] {
            assert!(body.contains(field), "BENCH_mutate.json missing {field}");
        }
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics readable");
        assert!(metrics.contains("graph.mutate.publish_us"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
