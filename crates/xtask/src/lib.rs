//! Workspace correctness tooling (`cargo run -p mqa-xtask -- <command>`).
//!
//! Two gates, both dependency-free and offline:
//!
//! * [`lint`] — a source-walking static analyzer enforcing the workspace's
//!   error-handling discipline (no `.unwrap()` / `.expect(` / `panic!` in
//!   non-test library code, no float `==` in distance/weight kernels, no
//!   `unsafe` without a `// SAFETY:` comment, no wildcard arms on
//!   error-enum matches), with a checked-in waiver baseline
//!   ([`baseline`]) for the justified exceptions.
//! * [`audit`] — runtime structural validation: builds every index variant
//!   over a synthetic corpus and runs the `validate` auditors the data
//!   structures carry (`Hnsw`, `Ivf`, `NavGraph`, `Dag`,
//!   `MultiVectorStore`).
//!
//! Both exit non-zero on any finding, which is what lets `ci.sh` treat
//! them as hard gates. A third command, [`obs`], is the observability
//! smoke gate: it runs a seeded dialogue scenario with the `mqa-obs`
//! journal enabled, writes the journal / metrics-snapshot / report
//! artifacts, and fails unless every instrumented pipeline layer shows
//! up in the snapshot. A fourth, [`engine`], is the concurrency smoke
//! gate: worker-pool answers must match the serial path exactly, and
//! paged-search QPS must scale with workers.

pub mod audit;
pub mod baseline;
pub mod engine;
pub mod lint;
pub mod obs;
