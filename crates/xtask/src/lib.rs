//! Workspace correctness tooling (`cargo run -p mqa-xtask -- <command>`).
//!
//! Two gates, both dependency-free and offline:
//!
//! * [`lint`] — a source-walking static analyzer enforcing the workspace's
//!   error-handling discipline (no `.unwrap()` / `.expect(` / `panic!` in
//!   non-test library code, no float `==` in distance/weight kernels, no
//!   `unsafe` without a `// SAFETY:` comment, no wildcard arms on
//!   error-enum matches), with a checked-in waiver baseline
//!   ([`baseline`]) for the justified exceptions.
//! * [`audit`] — runtime structural validation: builds every index variant
//!   over a synthetic corpus and runs the `validate` auditors the data
//!   structures carry (`Hnsw`, `Ivf`, `NavGraph`, `Dag`,
//!   `MultiVectorStore`).
//!
//! Both exit non-zero on any finding, which is what lets `ci.sh` treat
//! them as hard gates. A third command, [`obs`], is the observability
//! smoke gate: it runs a seeded dialogue scenario with the `mqa-obs`
//! journal enabled, writes the journal / metrics-snapshot / report
//! artifacts, and fails unless every instrumented pipeline layer shows
//! up in the snapshot. A fourth, [`engine`], is the concurrency smoke
//! gate: worker-pool answers must match the serial path exactly, paged
//! QPS must scale with workers, and the runtime lock-order witness must
//! agree with the static lock graph. A fifth, [`conc`], is the static
//! concurrency analysis: a token-level pass ([`rustlex`]) extracts
//! every lock acquisition in the workspace, builds the global
//! lock-order graph, and reports order cycles, non-looped
//! `Condvar::wait`s, and guards held across blocking calls. A sixth,
//! [`flow`], is the panic-freedom gate: it inventories every function
//! and panic-capable construct, builds the workspace call graph, and
//! fails if any panic site is reachable from a serving entry point
//! without a reasoned waiver in `flow-baseline.toml`. A seventh,
//! [`trace`], is the per-query tracing gate: a seeded dialogue through
//! the concurrent engine with tracing enabled must yield exactly one
//! milestone-complete [`mqa_obs::QueryTrace`] per turn, with queue-wait /
//! service attribution that adds up, deterministic tail sampling, and a
//! `/metrics` surface that parses as valid text exposition. An eighth,
//! [`mutate`], is the online-mutation gate: a scripted insert/delete mix
//! runs against a 2-worker engine, and the gate fails if a tombstoned
//! object ever surfaces, the result-cache generation misses a bump, the
//! delete volume never triggers compaction, or a `graph.mutate.*`
//! instrument stays empty. A ninth, [`alloc`], is the allocation-freedom
//! gate: the same call-graph machinery as [`flow`] (shared in
//! [`callgraph`]) inventories every allocation-capable site, computes
//! the allocation cone from the steady-state serving entry points, and
//! fails if any reachable site lacks an `// ALLOC:` discharge or a
//! reasoned waiver in `alloc-baseline.toml` — cross-validated at runtime
//! by the `alloc-witness` counting allocator in `mqa-engine`.

pub mod alloc;
pub mod audit;
pub mod baseline;
pub mod callgraph;
pub mod conc;
pub mod engine;
pub mod flow;
pub mod lint;
pub mod mutate;
pub mod obs;
pub mod rustlex;
pub mod sched;
pub mod trace;

/// Serializes scenario tests that reset the global `mqa-obs` registry or
/// trace collector: the obs, engine, and trace gates all run real
/// workloads against process-global state, so their in-crate tests must
/// not interleave.
#[cfg(test)]
pub(crate) fn scenario_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
