//! A zero-dependency token-level Rust lexer.
//!
//! Upgrades the line-oriented `strip` pass to real tokens with line
//! spans, which is what the concurrency analysis needs: matching
//! `guard = self.state.lock()` as a *token sequence* instead of a
//! substring, resolving `self.<field>` receivers, and reading the
//! string literal out of `TracedMutex::new("…")`.
//!
//! The lexer covers the Rust surface that appears in source the
//! workspace lints: identifiers (including raw `r#ident`), lifetimes,
//! integer/float literals with suffixes, string/char/byte literals, raw
//! strings with `#` fences, nested block comments, and maximal-munch
//! multi-character punctuation. It does not attempt macro expansion or
//! token trees — the downstream analyses are intraprocedural pattern
//! matchers, not a compiler front-end.

use std::fmt;

/// Token classes, coarse on purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (the analyses match keywords by text).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`), without `'`.
    Lifetime,
    /// Integer literal, suffix included (`42`, `0xff_u32`).
    Int,
    /// Float literal, suffix included (`1.5`, `2e-3`, `1.0f32`).
    Float,
    /// String literal of any flavor; `text` is the *inner* content.
    Str,
    /// Char or byte literal; `text` is the inner content.
    Char,
    /// Punctuation, maximal-munch (`::`, `->`, `==`, `..=`, `{`, …).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// Token text (see [`Kind`] for what string-ish tokens carry).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}({})", self.line, self.kind, self.text)
    }
}

/// Multi-character punctuation, longest first (maximal munch).
const PUNCTS: [&str; 25] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "'",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into a flat token stream, dropping comments and
/// whitespace but keeping line numbers. Unterminated literals lex to the
/// end of input rather than erroring — the analyses degrade gracefully
/// on pathological files.
pub fn lex(source: &str) -> Vec<Tok> {
    let b: Vec<char> = source.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;

    let count_lines = |from: usize, to: usize, b: &[char]| -> usize {
        b[from..to].iter().filter(|&&c| c == '\n').count()
    };

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(start, i.min(n), &b);
            continue;
        }
        // Raw string (r"…", r#"…"#, br#"…"#) or raw identifier (r#ident).
        if c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r') {
            let j = if c == 'r' { i + 1 } else { i + 2 };
            let mut hashes = 0;
            let mut k = j;
            while k < n && b[k] == '#' {
                hashes += 1;
                k += 1;
            }
            if k < n && b[k] == '"' {
                let start_line = line;
                let content_start = k + 1;
                let mut p = content_start;
                let mut content_end = n;
                'raw: while p < n {
                    if b[p] == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if p + 1 + h >= n || b[p + 1 + h] != '#' {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            content_end = p;
                            p += 1 + hashes;
                            break 'raw;
                        }
                    }
                    p += 1;
                }
                line += count_lines(i, p.min(n), &b);
                toks.push(Tok {
                    kind: Kind::Str,
                    text: b[content_start..content_end.min(n)].iter().collect(),
                    line: start_line,
                });
                i = p;
                continue;
            }
            if c == 'r' && hashes == 1 && k < n && is_ident_start(b[k]) {
                // Raw identifier r#ident: keep the bare name.
                let mut p = k;
                while p < n && is_ident_continue(b[p]) {
                    p += 1;
                }
                toks.push(Tok {
                    kind: Kind::Ident,
                    text: b[k..p].iter().collect(),
                    line,
                });
                i = p;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Plain or byte string.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            let mut p = if c == 'b' { i + 2 } else { i + 1 };
            let content_start = p;
            let mut content = String::new();
            while p < n {
                if b[p] == '\\' && p + 1 < n {
                    content.push(b[p]);
                    content.push(b[p + 1]);
                    p += 2;
                } else if b[p] == '"' {
                    break;
                } else {
                    content.push(b[p]);
                    p += 1;
                }
            }
            line += count_lines(content_start, p.min(n), &b);
            toks.push(Tok {
                kind: Kind::Str,
                text: content,
                line: start_line,
            });
            i = (p + 1).min(n);
            continue;
        }
        // Char literal vs lifetime/label.
        if c == '\'' {
            let is_char = if i + 1 < n && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && b[i + 2] == '\''
            };
            if is_char {
                let mut p = i + 1;
                let mut content = String::new();
                if p < n && b[p] == '\\' {
                    content.push(b[p]);
                    p += 1;
                    if p < n && b[p] == 'u' {
                        while p < n && b[p] != '}' {
                            content.push(b[p]);
                            p += 1;
                        }
                    }
                }
                while p < n && b[p] != '\'' {
                    content.push(b[p]);
                    p += 1;
                }
                toks.push(Tok {
                    kind: Kind::Char,
                    text: content,
                    line,
                });
                i = (p + 1).min(n);
                continue;
            }
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut p = i + 1;
                while p < n && is_ident_continue(b[p]) {
                    p += 1;
                }
                toks.push(Tok {
                    kind: Kind::Lifetime,
                    text: b[i + 1..p].iter().collect(),
                    line,
                });
                i = p;
                continue;
            }
            // A bare quote (malformed): emit as punct and move on.
            toks.push(Tok {
                kind: Kind::Punct,
                text: "'".to_string(),
                line,
            });
            i += 1;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let mut p = i;
            let mut float = false;
            if c == '0' && p + 1 < n && (b[p + 1] == 'x' || b[p + 1] == 'b' || b[p + 1] == 'o') {
                p += 2;
                while p < n && (b[p].is_ascii_hexdigit() || b[p] == '_') {
                    p += 1;
                }
            } else {
                while p < n && (b[p].is_ascii_digit() || b[p] == '_') {
                    p += 1;
                }
                // A dot makes it a float only when a digit follows —
                // `1..4` and `1.max(2)` stay integers.
                if p + 1 < n && b[p] == '.' && b[p + 1].is_ascii_digit() {
                    float = true;
                    p += 1;
                    while p < n && (b[p].is_ascii_digit() || b[p] == '_') {
                        p += 1;
                    }
                }
                // Exponent: 1e5, 2.5e-3.
                if p < n
                    && (b[p] == 'e' || b[p] == 'E')
                    && (p + 1 < n
                        && (b[p + 1].is_ascii_digit() || b[p + 1] == '+' || b[p + 1] == '-'))
                {
                    let sign = if b[p + 1] == '+' || b[p + 1] == '-' {
                        1
                    } else {
                        0
                    };
                    if p + 1 + sign < n && b[p + 1 + sign].is_ascii_digit() {
                        float = true;
                        p += 2 + sign;
                        while p < n && (b[p].is_ascii_digit() || b[p] == '_') {
                            p += 1;
                        }
                    }
                }
            }
            // Type suffix (u32, f64, usize …).
            let suffix_start = p;
            while p < n && is_ident_continue(b[p]) {
                p += 1;
            }
            let suffix: String = b[suffix_start..p].iter().collect();
            if suffix.starts_with('f') {
                float = true;
            }
            toks.push(Tok {
                kind: if float { Kind::Float } else { Kind::Int },
                text: b[start..p].iter().collect(),
                line,
            });
            i = p;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            let mut p = i;
            while p < n && is_ident_continue(b[p]) {
                p += 1;
            }
            toks.push(Tok {
                kind: Kind::Ident,
                text: b[start..p].iter().collect(),
                line,
            });
            i = p;
            continue;
        }
        // Punctuation, maximal munch.
        let mut matched = false;
        for punct in PUNCTS {
            let len = punct.chars().count();
            if len > 1 && i + len <= n && b[i..i + len].iter().collect::<String>() == punct {
                toks.push(Tok {
                    kind: Kind::Punct,
                    text: punct.to_string(),
                    line,
                });
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            toks.push(Tok {
                kind: Kind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn lexes_a_lock_acquisition_statement() {
        let toks = lex("let mut state = self.state.lock();");
        let expect = [
            "let", "mut", "state", "=", "self", ".", "state", ".", "lock", "(", ")", ";",
        ];
        assert_eq!(
            toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            expect
        );
        assert!(toks.iter().all(|t| t.line == 1));
    }

    #[test]
    fn string_tokens_keep_inner_content() {
        let toks = lex(r#"TracedMutex::new("engine.queue.state", v)"#);
        let s = toks.iter().find(|t| t.kind == Kind::Str).expect("str tok");
        assert_eq!(s.text, "engine.queue.state");
        let toks = lex(r###"let r = r#"raw content"#;"###);
        let s = toks.iter().find(|t| t.kind == Kind::Str).expect("raw str");
        assert_eq!(s.text, "raw content");
    }

    #[test]
    fn comments_vanish_but_lines_advance() {
        let src = "a // one\n/* two\nthree */ b\n";
        let toks = lex(src);
        assert_eq!(toks.len(), 2);
        assert_eq!((toks[0].text.as_str(), toks[0].line), ("a", 1));
        assert_eq!((toks[1].text.as_str(), toks[1].line), ("b", 3));
    }

    #[test]
    fn lifetimes_chars_and_labels_disambiguate() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; 'outer: loop { break 'outer; } }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "outer", "outer"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["x"]);
    }

    #[test]
    fn numbers_split_from_range_and_method_dots() {
        assert_eq!(texts("0..=4"), ["0", "..=", "4"]);
        assert_eq!(texts("1.max(2)"), ["1", ".", "max", "(", "2", ")"]);
        let toks = lex("1.5 + 2e-3 + 0xff_u32 + 1f64");
        let kinds: Vec<Kind> = toks
            .iter()
            .filter(|t| t.kind != Kind::Punct)
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds, [Kind::Float, Kind::Float, Kind::Int, Kind::Float]);
    }

    #[test]
    fn maximal_munch_punctuation() {
        assert_eq!(
            texts("a::b->c=>d==e!=f<=g"),
            ["a", "::", "b", "->", "c", "=>", "d", "==", "e", "!=", "f", "<=", "g"]
        );
        assert_eq!(
            texts("x <<= 1; y >>= 2; z ..= w"),
            ["x", "<<=", "1", ";", "y", ">>=", "2", ";", "z", "..=", "w"]
        );
    }

    #[test]
    fn raw_identifiers_keep_bare_name() {
        assert_eq!(texts("r#match + rate"), ["match", "+", "rate"]);
    }

    #[test]
    fn multiline_strings_advance_lines() {
        let toks = lex("let s = \"one\ntwo\";\nnext");
        let next = toks.iter().find(|t| t.is_ident("next")).expect("next tok");
        assert_eq!(next.line, 3);
    }
}
