//! The lint waiver baseline (`lint-baseline.toml`).
//!
//! The baseline is an allowlist of *justified* findings: each `[[waiver]]`
//! entry names a file, a rule, an optional `pattern` substring narrowing
//! the match to specific lines, and a mandatory human `reason`. The lint
//! run fails on any finding without a waiver — and on any waiver without
//! a finding, so stale entries cannot silently accumulate.
//!
//! The parser reads the small TOML subset the file needs (`[[waiver]]`
//! tables with `key = "string"` pairs, `#` comments, blank lines) — no
//! external TOML dependency.

use crate::lint::{Finding, Rule};
use std::path::Path;

/// One allowlisted finding class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Repo-relative file the waiver applies to.
    pub file: String,
    /// Rule name (see [`Rule::name`]).
    pub rule: String,
    /// Optional substring of the flagged source line; absent = every
    /// finding of `rule` in `file`.
    pub pattern: Option<String>,
    /// Why this violation is acceptable. Mandatory.
    pub reason: String,
    /// Line of the `[[waiver]]` header in the baseline file.
    pub line: usize,
}

impl Waiver {
    /// Whether this waiver suppresses `finding`.
    pub fn matches(&self, finding: &Finding) -> bool {
        self.file == finding.file
            && self.rule == finding.rule.name()
            && self
                .pattern
                .as_deref()
                .is_none_or(|p| finding.excerpt.contains(p))
    }

    /// Short description for "unused waiver" diagnostics.
    pub fn describe(&self) -> String {
        match &self.pattern {
            Some(p) => format!(
                "{} [{}] pattern {:?} (line {})",
                self.file, self.rule, p, self.line
            ),
            None => format!("{} [{}] (line {})", self.file, self.rule, self.line),
        }
    }
}

/// The parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Waivers in file order.
    pub waivers: Vec<Waiver>,
}

impl Baseline {
    /// A baseline waiving nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Indices of waivers matching `finding`, in baseline order.
    pub fn matching<'a>(&'a self, finding: &'a Finding) -> impl Iterator<Item = usize> + 'a {
        self.waivers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.matches(finding))
            .map(|(i, _)| i)
    }

    /// Loads and parses a baseline file. A missing file is an empty
    /// baseline (a fresh tree needs no waivers).
    ///
    /// # Errors
    /// Returns a message on unreadable files or malformed entries.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::empty());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Parses baseline text.
    ///
    /// # Errors
    /// Returns a message for syntax errors, unknown keys or rules, and
    /// waivers missing `file`, `rule`, or a non-empty `reason`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut waivers = Vec::new();
        // (file, rule, pattern, reason, header line)
        let mut current: Option<(
            Option<String>,
            Option<String>,
            Option<String>,
            Option<String>,
            usize,
        )> = None;
        let mut finish = |cur: &mut Option<(
            Option<String>,
            Option<String>,
            Option<String>,
            Option<String>,
            usize,
        )>|
         -> Result<(), String> {
            if let Some((file, rule, pattern, reason, line)) = cur.take() {
                let file = file.ok_or(format!("waiver at line {line}: missing `file`"))?;
                let rule = rule.ok_or(format!("waiver at line {line}: missing `rule`"))?;
                if Rule::from_name(&rule).is_none() {
                    return Err(format!("waiver at line {line}: unknown rule `{rule}`"));
                }
                let reason = reason.ok_or(format!("waiver at line {line}: missing `reason`"))?;
                if reason.trim().is_empty() {
                    return Err(format!("waiver at line {line}: empty `reason`"));
                }
                waivers.push(Waiver {
                    file,
                    rule,
                    pattern,
                    reason,
                    line,
                });
            }
            Ok(())
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[waiver]]" {
                finish(&mut current)?;
                current = Some((None, None, None, None, lineno));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {lineno}: unknown table `{line}`"));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(format!("line {lineno}: expected `key = \"value\"`"))?;
            let key = key.trim();
            let value = parse_string_value(value.trim()).ok_or(format!(
                "line {lineno}: value must be a double-quoted string"
            ))?;
            let entry = current
                .as_mut()
                .ok_or(format!("line {lineno}: `{key}` outside a [[waiver]] table"))?;
            let slot = match key {
                "file" => &mut entry.0,
                "rule" => &mut entry.1,
                "pattern" => &mut entry.2,
                "reason" => &mut entry.3,
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            };
            if slot.is_some() {
                return Err(format!("line {lineno}: duplicate key `{key}`"));
            }
            *slot = Some(value);
        }
        finish(&mut current)?;
        Ok(Self { waivers })
    }
}

/// Parses a TOML basic string (double quotes, `\"` / `\\` escapes),
/// tolerating a trailing `#` comment after the closing quote.
fn parse_string_value(v: &str) -> Option<String> {
    let rest = v.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            },
            '"' => {
                let tail = chars.as_str().trim();
                if tail.is_empty() || tail.starts_with('#') {
                    return Some(out);
                }
                return None;
            }
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# experiment binaries fail fast by design
[[waiver]]
file = "crates/bench/src/bin/exp.rs"
rule = "no-unwrap"
reason = "CLI binary: fail-fast on malformed input"

[[waiver]]
file = "crates/graph/src/pipeline.rs"
rule = "no-expect"
pattern = "connectivity present"
reason = "artifact published by the stage two lines above"
"#;

    #[test]
    fn parses_waivers_with_and_without_pattern() {
        let b = Baseline::parse(GOOD).unwrap();
        assert_eq!(b.waivers.len(), 2);
        assert_eq!(b.waivers[0].pattern, None);
        assert_eq!(
            b.waivers[1].pattern.as_deref(),
            Some("connectivity present")
        );
    }

    #[test]
    fn matching_respects_file_rule_and_pattern() {
        let b = Baseline::parse(GOOD).unwrap();
        let f = Finding {
            file: "crates/graph/src/pipeline.rs".into(),
            line: 296,
            rule: Rule::NoExpect,
            excerpt: "ctx.get(\"connectivity\").expect(\"connectivity present\");".into(),
        };
        assert_eq!(b.matching(&f).collect::<Vec<_>>(), vec![1]);
        let other = Finding {
            excerpt: "x.expect(\"other\")".into(),
            ..f.clone()
        };
        assert!(b.matching(&other).next().is_none());
        let wrong_rule = Finding {
            rule: Rule::NoUnwrap,
            ..f
        };
        assert!(b.matching(&wrong_rule).next().is_none());
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(
            Baseline::parse("[[waiver]]\nrule = \"no-unwrap\"\nreason = \"r\"")
                .unwrap_err()
                .contains("missing `file`")
        );
        assert!(
            Baseline::parse("[[waiver]]\nfile = \"f\"\nrule = \"nope\"\nreason = \"r\"")
                .unwrap_err()
                .contains("unknown rule")
        );
        assert!(
            Baseline::parse("[[waiver]]\nfile = \"f\"\nrule = \"no-unwrap\"")
                .unwrap_err()
                .contains("missing `reason`")
        );
        assert!(Baseline::parse("file = \"f\"")
            .unwrap_err()
            .contains("outside"));
        assert!(Baseline::parse("[[waiver]]\nfile = unquoted")
            .unwrap_err()
            .contains("double-quoted"));
    }

    #[test]
    fn missing_file_is_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/lint-baseline.toml")).unwrap();
        assert!(b.waivers.is_empty());
    }
}
