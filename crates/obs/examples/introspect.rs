//! Runs the live introspection endpoint against synthetic load.
//!
//! ```text
//! cargo run -p mqa-obs --features serve --example introspect
//! curl http://127.0.0.1:9898/metrics
//! curl http://127.0.0.1:9898/traces
//! curl http://127.0.0.1:9898/report
//! ```
//!
//! The load generator mints one trace per tick with a few nested stages
//! and varying latency, so all three routes have something to show.

use std::time::Duration;

fn main() {
    if let Err(err) = run() {
        eprintln!("introspect example failed: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), std::io::Error> {
    mqa_obs::trace::configure(mqa_obs::TraceConfig::default());
    mqa_obs::trace::enable();

    let handle = mqa_obs::serve::serve("127.0.0.1:9898")?;
    let addr = handle.addr();
    println!("introspection endpoint listening on http://{addr}");
    println!("  curl http://{addr}/metrics   # Prometheus text exposition");
    println!("  curl http://{addr}/traces    # retained query traces (JSONL)");
    println!("  curl http://{addr}/report    # human-readable pipeline report");
    println!("press Ctrl-C to stop");

    let latency = mqa_obs::histogram("engine.query.latency_us");
    let mut tick: u64 = 0;
    loop {
        tick = tick.wrapping_add(1);
        let trace = mqa_obs::trace::begin("example.query");
        {
            let _turn = mqa_obs::span("example.query");
            {
                let _encode = mqa_obs::span("example.query.encode");
                std::thread::sleep(Duration::from_millis(1));
            }
            {
                let _search = mqa_obs::span("example.query.search");
                // Vary the work so the slowest-N set is non-trivial.
                std::thread::sleep(Duration::from_millis(1 + tick % 7));
            }
            mqa_obs::trace::add_search_work(2, 40, 3, 8, 5);
            mqa_obs::trace::add_tokens(64, 24);
            mqa_obs::counter("example.load.queries").inc();
        }
        if let Some(t) = trace {
            let us = 1_000u64.saturating_add((tick % 7).saturating_mul(1_000));
            latency.record_with_exemplar(us, t.id());
            t.finish();
        }
        std::thread::sleep(Duration::from_millis(250));
    }
}
