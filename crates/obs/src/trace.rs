//! Per-query distributed tracing: causal chains across the engine's
//! thread boundary.
//!
//! The aggregate [`crate::metrics::Registry`] answers "how slow is the
//! system"; this module answers "why was *this* turn slow". A
//! [`TraceContext`] is minted at the serving entry point (a dialogue turn
//! or a raw engine submission), carried inside the job closure across the
//! bounded queue, and re-established on the worker thread with
//! [`TraceContext::adopt`], so every span that closes anywhere on the
//! query's path lands in one [`QueryTrace`] record: queue wait, worker id,
//! per-stage retrieval spans, graph-walk work, result-cache outcome, and
//! mock-LLM token counts.
//!
//! # Context propagation rules
//!
//! - [`begin`] installs the new context in a thread-local slot; spans that
//!   close on that thread while the handle lives are recorded as stages.
//! - The context is `Clone + Send`; the engine moves a clone into the job
//!   closure. On the worker, [`TraceContext::adopt`] installs it for the
//!   duration of the job (restoring the previous value on drop).
//! - Exactly one [`QueryTrace`] is emitted per handle, when the *owning*
//!   [`TraceHandle`] drops: outcome `"completed"` if
//!   [`TraceHandle::complete`] was called, `"canceled"` otherwise — a
//!   worker panic or an abandoned job unwinds the handle without
//!   completing it, so the trace is still emitted, terminated as canceled.
//!
//! # Sampling policy
//!
//! The collector is bounded like the journal: it retains full traces for
//! the slowest-N queries (by end-to-end duration) plus a deterministic
//! 1-in-K sample decided by [`sample_hit`] — a `SplitMix64` draw keyed on
//! `(seed, sequence number)`, so a fixed seed reproduces the exact same
//! retained set for the same workload, regardless of wall-clock jitter.
//! Everything else is dropped after updating the `obs.trace.*` counters.

use mqa_rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Hard cap on recorded stages per trace (bounded memory; the serving
/// pipeline closes ~15 spans per turn, so 256 leaves generous headroom).
pub const MAX_STAGES: usize = 256;

/// Locks `m`, recovering from poisoning: trace state is append-only
/// bookkeeping, so data written before a panic elsewhere is still safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The trace the current thread is contributing to, if any.
    static CURRENT: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
    /// This thread's engine worker id (`u64::MAX` = not a worker thread).
    static WORKER: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// The five per-query pipeline milestones a complete trace must cover,
/// each backed by the span names that can witness it (alternatives per
/// retrieval framework). Mirrors `report::MILESTONE_SPANS`, but for the
/// *query-time* pipeline rather than the build-time one.
pub const QUERY_MILESTONES: [(&str, &[&str]); 5] = [
    ("Query Turn", &["core.turn", "engine.query.service"]),
    (
        "Encoding",
        &[
            "retrieval.must.encode",
            "retrieval.mr.encode",
            "retrieval.je.encode",
        ],
    ),
    (
        "Fusion",
        &[
            "retrieval.must.weight_fuse",
            "retrieval.mr.merge",
            "retrieval.je.encode",
        ],
    ),
    (
        "Index Search",
        &[
            "retrieval.must.index_search",
            "retrieval.mr.channel_search",
            "retrieval.je.index_search",
        ],
    ),
    ("Answer Generation", &["core.turn.generate", "llm.generate"]),
];

/// Milestones (by display name) that `trace` does *not* cover. A trace
/// served from the result cache legitimately skips Encoding/Fusion/Index
/// Search; an engine-submitted query must cover all five.
pub fn missing_milestones(trace: &QueryTrace) -> Vec<&'static str> {
    QUERY_MILESTONES
        .iter()
        .filter(|(_, witnesses)| {
            !witnesses
                .iter()
                .any(|w| trace.root == *w || trace.stages.iter().any(|s| s.name == *w))
        })
        .map(|(name, _)| *name)
        .collect()
}

/// One closed span attributed to a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Span name (`<crate>.<component>.<metric>`).
    pub name: String,
    /// Parent span name (empty for the trace root's direct children).
    pub parent: String,
    /// Stage duration in microseconds.
    pub dur_us: u64,
}

/// The complete record of one query's path through the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Trace id (allocated from the span id space).
    pub trace_id: u64,
    /// Root span name the trace was begun under.
    pub root: String,
    /// Collector sequence number (1-based, per [`reset`]).
    pub seq: u64,
    /// Whether the deterministic 1-in-K sampler retained this trace.
    pub sampled: bool,
    /// `"completed"` or `"canceled"`.
    pub outcome: String,
    /// End-to-end duration from [`begin`] to handle drop, microseconds.
    pub total_us: u64,
    /// Time the job spent queued before a worker picked it up.
    pub queue_wait_us: u64,
    /// Time the worker spent servicing the job.
    pub service_us: u64,
    /// Submit-to-resolve duration measured on the engine's clock
    /// (`queue_wait_us + service_us` up to scheduling noise).
    pub engine_total_us: u64,
    /// Worker thread that serviced the job, if it crossed the pool.
    pub worker: Option<u64>,
    /// Result-cache outcome: `None` = no cache consulted.
    pub cache_hit: Option<bool>,
    /// Whether the engine refused the job and the serial path answered.
    pub serial_fallback: bool,
    /// Retrieval framework that served the query (empty if none noted).
    pub framework: String,
    /// Graph-walk hops.
    pub hops: u64,
    /// Distance evaluations.
    pub evals: u64,
    /// Pruned candidates.
    pub pruned: u64,
    /// Simulated device pages read (Starling paged search).
    pub pages_read: u64,
    /// Pages served by the shared page cache.
    pub pages_cached: u64,
    /// Mock-LLM prompt tokens consumed by the turn.
    pub prompt_tokens: u64,
    /// Mock-LLM completion tokens produced by the turn.
    pub completion_tokens: u64,
    /// Index publication epoch the query searched under (0 = as built;
    /// each mutation batch publishes one epoch).
    pub index_epoch: u64,
    /// Whether a mutation batch was being applied while the query ran —
    /// distinguishes quiesced queries from concurrent-mutation ones when
    /// attributing tail latency.
    pub mutation_in_progress: bool,
    /// The per-query deadline budget in microseconds (0 = no deadline).
    pub deadline_us: u64,
    /// Size of the scheduler micro-batch the job was dispatched in
    /// (0 = direct dispatch, no scheduler stage).
    pub sched_batch: u64,
    /// Closed spans attributed to the trace, in close order.
    pub stages: Vec<StageRecord>,
    /// Stages discarded once [`MAX_STAGES`] was reached.
    pub stages_dropped: u64,
}

/// Mutable trace state shared by every thread contributing to the query.
#[derive(Default)]
struct TraceInner {
    stages: Vec<StageRecord>,
    stages_dropped: u64,
    worker: Option<u64>,
    queue_wait_us: u64,
    service_us: u64,
    engine_total_us: u64,
    cache_hit: Option<bool>,
    serial_fallback: bool,
    framework: String,
    hops: u64,
    evals: u64,
    pruned: u64,
    pages_read: u64,
    pages_cached: u64,
    prompt_tokens: u64,
    completion_tokens: u64,
    index_epoch: u64,
    mutation_in_progress: bool,
    deadline_us: u64,
    sched_batch: u64,
    completed: bool,
}

/// A cheaply-clonable reference to one in-flight trace; move clones into
/// job closures to carry the causal chain across thread boundaries.
#[derive(Clone)]
pub struct TraceContext {
    id: u64,
    root: Arc<str>,
    inner: Arc<Mutex<TraceInner>>,
}

impl TraceContext {
    /// The trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The root span name the trace was begun under.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Installs this context as the current thread's trace for the guard's
    /// lifetime (worker-side re-establishment), recording the thread's
    /// worker id if [`set_worker_id`] was called.
    pub fn adopt(&self) -> AdoptGuard {
        let worker = WORKER.with(Cell::get);
        if worker != u64::MAX {
            lock(&self.inner).worker = Some(worker);
        }
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        AdoptGuard { prev }
    }

    fn push_stage(&self, name: &str, parent: Option<&str>, dur_us: u64) {
        let dropped = {
            let mut inner = lock(&self.inner);
            if inner.stages.len() >= MAX_STAGES {
                inner.stages_dropped += 1;
                true
            } else {
                inner.stages.push(StageRecord {
                    // ALLOC: stage attribution copies names only while a trace is active.
                    name: name.to_string(),
                    parent: parent.unwrap_or("").to_string(),
                    dur_us,
                });
                false
            }
        };
        if dropped {
            crate::counter("obs.trace.stages_dropped").inc();
        }
    }
}

/// Restores the previously-current trace context on drop.
#[must_use = "dropping immediately un-adopts the trace before any work runs"]
pub struct AdoptGuard {
    prev: Option<TraceContext>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// The owning handle of one trace. Dropping it finalizes the trace and
/// offers it to the collector — exactly once, on any path including
/// unwinding, so a panicked job still emits a canceled trace.
#[must_use = "dropping immediately finalizes an empty trace"]
pub struct TraceHandle {
    ctx: TraceContext,
    start: Instant,
    installed: bool,
    prev: Option<TraceContext>,
    finalized: bool,
}

impl TraceHandle {
    /// A clone of the underlying context, for carrying across threads.
    pub fn context(&self) -> TraceContext {
        self.ctx.clone()
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.ctx.id
    }

    /// Marks the query as successfully answered; without this the trace
    /// finalizes with outcome `"canceled"`.
    pub fn complete(&self) {
        lock(&self.ctx.inner).completed = true;
    }

    /// Marks completion and finalizes immediately (the trace is visible in
    /// the collector when this returns).
    pub fn finish(self) {
        self.complete();
    }

    fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        if self.installed {
            let prev = self.prev.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
        let total_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let (trace, completed) = {
            let mut inner = lock(&self.ctx.inner);
            let completed = inner.completed;
            let trace = QueryTrace {
                trace_id: self.ctx.id,
                root: self.ctx.root.to_string(),
                seq: 0,
                sampled: false,
                outcome: if completed { "completed" } else { "canceled" }.to_string(),
                total_us,
                queue_wait_us: inner.queue_wait_us,
                service_us: inner.service_us,
                engine_total_us: inner.engine_total_us,
                worker: inner.worker,
                cache_hit: inner.cache_hit,
                serial_fallback: inner.serial_fallback,
                framework: std::mem::take(&mut inner.framework),
                hops: inner.hops,
                evals: inner.evals,
                pruned: inner.pruned,
                pages_read: inner.pages_read,
                pages_cached: inner.pages_cached,
                prompt_tokens: inner.prompt_tokens,
                completion_tokens: inner.completion_tokens,
                index_epoch: inner.index_epoch,
                mutation_in_progress: inner.mutation_in_progress,
                deadline_us: inner.deadline_us,
                sched_batch: inner.sched_batch,
                stages: std::mem::take(&mut inner.stages),
                stages_dropped: inner.stages_dropped,
            };
            (trace, completed)
        };
        if completed {
            crate::counter("obs.trace.completed").inc();
        } else {
            crate::counter("obs.trace.canceled").inc();
        }
        offer(trace);
    }
}

impl Drop for TraceHandle {
    fn drop(&mut self) {
        self.finalize();
    }
}

/// Collector sizing and sampling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Full traces retained for the slowest-N queries.
    pub slowest: usize,
    /// Deterministic 1-in-K sampling period (0 disables sampling).
    pub sample_every: u64,
    /// Seed of the sampling decision stream.
    pub seed: u64,
    /// Cap on retained sampled traces (bounded memory).
    pub max_sampled: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            slowest: 8,
            sample_every: 16,
            seed: 0x5EED_CAFE,
            max_sampled: 256,
        }
    }
}

struct CollectorState {
    config: TraceConfig,
    seq: u64,
    slowest: Vec<QueryTrace>,
    sampled: Vec<QueryTrace>,
}

fn collector() -> &'static Mutex<CollectorState> {
    static COLLECTOR: OnceLock<Mutex<CollectorState>> = OnceLock::new();
    COLLECTOR.get_or_init(|| {
        Mutex::new(CollectorState {
            config: TraceConfig::default(),
            seq: 0,
            slowest: Vec::new(),
            sampled: Vec::new(),
        })
    })
}

/// Replaces the collector configuration and clears all retained traces
/// and the sampling sequence.
pub fn configure(config: TraceConfig) {
    let mut st = lock(collector());
    st.config = config;
    st.seq = 0;
    st.slowest.clear();
    st.sampled.clear();
}

/// Clears retained traces and the sampling sequence, keeping the config.
pub fn reset() {
    let mut st = lock(collector());
    st.seq = 0;
    st.slowest.clear();
    st.sampled.clear();
}

/// Turns tracing on. Off by default: with tracing off, [`begin`] returns
/// `None` and the per-span bridge is a thread-local `None` check.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off (in-flight handles still finalize).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The deterministic 1-in-`every` sampling decision for trace number
/// `seq` under `seed`. Pure, so gates can recompute and verify it.
pub fn sample_hit(seed: u64, seq: u64, every: u64) -> bool {
    if every == 0 {
        return false;
    }
    let mut rng = SplitMix64::new(seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.next_u64().checked_rem(every) == Some(0)
}

/// Begins a trace rooted at `root` and installs it as the current
/// thread's trace. Returns `None` when tracing is disabled.
pub fn begin(root: &str) -> Option<TraceHandle> {
    begin_inner(root, true)
}

/// Begins a trace without installing it on this thread — for contexts
/// that are immediately moved into a job closure (raw engine submits).
pub fn begin_detached(root: &str) -> Option<TraceHandle> {
    begin_inner(root, false)
}

fn begin_inner(root: &str, install: bool) -> Option<TraceHandle> {
    if !enabled() {
        return None;
    }
    let ctx = TraceContext {
        id: crate::span::next_id(),
        // ALLOC: per-trace context, minted only when tracing is enabled (checked above).
        root: Arc::from(root),
        inner: Arc::new(Mutex::new(TraceInner::default())),
    };
    crate::counter("obs.trace.started").inc();
    let prev = if install {
        CURRENT.with(|c| c.borrow_mut().replace(ctx.clone()))
    } else {
        None
    };
    Some(TraceHandle {
        ctx,
        start: Instant::now(),
        installed: install,
        prev,
        finalized: false,
    })
}

/// The current thread's trace context, if one is installed.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Declares this thread an engine worker; [`TraceContext::adopt`] stamps
/// the id into every trace the thread services.
pub fn set_worker_id(id: u64) {
    WORKER.with(|w| w.set(id));
}

/// Bridge from [`crate::span`]: attributes a closed span to the current
/// thread's trace, if one is installed.
pub(crate) fn record_stage(name: &str, parent: Option<&str>, dur_us: u64) {
    // Clone out of the thread-local before locking the trace, so a span
    // closing inside trace machinery can never re-entrantly borrow.
    let ctx = current();
    if let Some(ctx) = ctx {
        ctx.push_stage(name, parent, dur_us);
    }
}

fn with_current<F: FnOnce(&mut TraceInner)>(f: F) {
    let ctx = current();
    if let Some(ctx) = ctx {
        f(&mut lock(&ctx.inner));
    }
}

/// Records how long the query waited in the submission queue.
pub fn note_queue_wait(us: u64) {
    with_current(|i| i.queue_wait_us = us);
}

/// Records the worker-side service duration.
pub fn note_service(us: u64) {
    with_current(|i| i.service_us = us);
}

/// Records the submit-to-resolve duration on the engine's own clock.
pub fn note_engine_total(us: u64) {
    with_current(|i| i.engine_total_us = us);
}

/// Records the result-cache outcome of the turn.
pub fn note_cache(hit: bool) {
    with_current(|i| i.cache_hit = Some(hit));
}

/// Records that the engine refused the job and the serial path answered.
pub fn note_serial_fallback() {
    with_current(|i| i.serial_fallback = true);
}

/// Records the retrieval framework serving the query (first writer wins).
pub fn note_framework(name: &str) {
    with_current(|i| {
        if i.framework.is_empty() {
            // ALLOC: trace attribution; with_current no-ops unless a trace is active.
            i.framework = name.to_string();
        }
    });
}

/// Accumulates mock-LLM token usage into the trace.
pub fn add_tokens(prompt: u64, completion: u64) {
    with_current(|i| {
        i.prompt_tokens += prompt;
        i.completion_tokens += completion;
    });
}

/// Records which published index generation the query searched and
/// whether a mutation batch was concurrently in flight. `mutating` is
/// sticky (any search leg under mutation marks the whole trace); the
/// epoch takes the last writer, which for a single-index query is the
/// only one.
pub fn note_index_state(epoch: u64, mutating: bool) {
    with_current(|i| {
        i.index_epoch = epoch;
        i.mutation_in_progress |= mutating;
    });
}

/// Records the query's deadline budget (microseconds) on the trace.
pub fn note_deadline_budget(budget_us: u64) {
    with_current(|i| i.deadline_us = budget_us);
}

/// Records the size of the scheduler micro-batch the job shipped in.
pub fn note_sched_batch(batch: u64) {
    with_current(|i| i.sched_batch = batch);
}

/// Accumulates graph-walk work (`SearchStats`) into the trace.
pub fn add_search_work(hops: u64, evals: u64, pruned: u64, pages_read: u64, pages_cached: u64) {
    with_current(|i| {
        i.hops += hops;
        i.evals += evals;
        i.pruned += pruned;
        i.pages_read += pages_read;
        i.pages_cached += pages_cached;
    });
}

fn offer(mut trace: QueryTrace) {
    let sampled_kept;
    let sampled_dropped;
    {
        let mut st = lock(collector());
        st.seq += 1;
        trace.seq = st.seq;
        trace.sampled = sample_hit(st.config.seed, st.seq, st.config.sample_every);
        sampled_kept = trace.sampled && st.sampled.len() < st.config.max_sampled;
        sampled_dropped = trace.sampled && !sampled_kept;
        if sampled_kept {
            st.sampled.push(trace.clone());
        }
        let cap = st.config.slowest;
        if cap > 0 {
            st.slowest.push(trace);
            st.slowest
                .sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.seq.cmp(&b.seq)));
            st.slowest.truncate(cap);
        }
    }
    if sampled_kept {
        crate::counter("obs.trace.sampled").inc();
    }
    if sampled_dropped {
        crate::counter("obs.trace.sampled_dropped").inc();
    }
}

/// Number of traces finalized since the last [`reset`]/[`configure`].
pub fn finalized_count() -> u64 {
    lock(collector()).seq
}

/// The retained slowest-N traces, slowest first.
pub fn slowest_traces() -> Vec<QueryTrace> {
    lock(collector()).slowest.clone()
}

/// The retained 1-in-K sampled traces, in arrival order.
pub fn sampled_traces() -> Vec<QueryTrace> {
    lock(collector()).sampled.clone()
}

/// Union of slowest-N and sampled traces, deduplicated, in arrival order.
pub fn snapshot_traces() -> Vec<QueryTrace> {
    let (mut all, sampled) = {
        let st = lock(collector());
        (st.slowest.clone(), st.sampled.clone())
    };
    for t in sampled {
        if !all.iter().any(|s| s.trace_id == t.trace_id) {
            all.push(t);
        }
    }
    all.sort_by_key(|t| t.seq);
    all
}

/// Renders every retained trace as JSONL (one trace per line).
pub fn to_jsonl() -> String {
    let mut out = String::new();
    for trace in snapshot_traces() {
        if let Ok(line) = serde_json::to_string(&trace) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collector state is global; tests that touch it serialize here.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        lock(GATE.get_or_init(|| Mutex::new(())))
    }

    fn test_config(slowest: usize, every: u64) -> TraceConfig {
        TraceConfig {
            slowest,
            sample_every: every,
            seed: 77,
            max_sampled: 64,
        }
    }

    #[test]
    fn disabled_tracing_begins_nothing() {
        let _g = guard();
        disable();
        assert!(begin("test.trace.root").is_none());
        assert!(current().is_none());
    }

    #[test]
    fn completed_trace_carries_stages_and_notes() {
        let _g = guard();
        enable();
        configure(test_config(8, 0));
        {
            let handle = begin("core.turn").expect("enabled");
            let inner = crate::span("test.trace.stage");
            drop(inner);
            note_queue_wait(11);
            note_service(22);
            note_cache(false);
            note_framework("must");
            add_tokens(5, 7);
            add_search_work(1, 2, 3, 4, 5);
            handle.finish();
        }
        let traces = snapshot_traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.outcome, "completed");
        assert_eq!(t.root, "core.turn");
        assert_eq!(t.queue_wait_us, 11);
        assert_eq!(t.service_us, 22);
        assert_eq!(t.cache_hit, Some(false));
        assert_eq!(t.framework, "must");
        assert_eq!((t.prompt_tokens, t.completion_tokens), (5, 7));
        assert_eq!((t.hops, t.evals, t.pruned), (1, 2, 3));
        assert_eq!((t.pages_read, t.pages_cached), (4, 5));
        assert!(t.stages.iter().any(|s| s.name == "test.trace.stage"));
        assert!(current().is_none(), "handle drop must uninstall");
        disable();
    }

    #[test]
    fn dropped_handle_without_complete_is_canceled() {
        let _g = guard();
        enable();
        configure(test_config(8, 0));
        drop(begin("core.turn"));
        let traces = snapshot_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].outcome, "canceled");
        disable();
    }

    #[test]
    fn adopt_carries_the_chain_across_a_thread() {
        let _g = guard();
        enable();
        configure(test_config(8, 0));
        {
            let handle = begin_detached("engine.query").expect("enabled");
            let ctx = handle.context();
            std::thread::spawn(move || {
                set_worker_id(3);
                let adopted = ctx.adopt();
                let span = crate::span_under("engine.query.service", ctx.root());
                drop(span);
                note_service(9);
                drop(adopted);
                assert!(current().is_none(), "adopt guard must restore");
            })
            .join()
            .expect("worker thread");
            handle.finish();
        }
        let traces = snapshot_traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.worker, Some(3));
        assert_eq!(t.service_us, 9);
        assert!(t.stages.iter().any(|s| s.name == "engine.query.service"));
        disable();
    }

    #[test]
    fn stage_cap_bounds_memory() {
        let _g = guard();
        enable();
        configure(test_config(4, 0));
        {
            let handle = begin("core.turn").expect("enabled");
            for _ in 0..(MAX_STAGES + 5) {
                drop(crate::span("test.trace.flood"));
            }
            handle.finish();
        }
        let traces = snapshot_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].stages.len(), MAX_STAGES);
        assert_eq!(traces[0].stages_dropped, 5);
        disable();
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_k() {
        for seed in [1u64, 42, 999] {
            let hits: Vec<u64> = (1..=4000).filter(|&s| sample_hit(seed, s, 4)).collect();
            let again: Vec<u64> = (1..=4000).filter(|&s| sample_hit(seed, s, 4)).collect();
            assert_eq!(hits, again, "same seed must reproduce decisions");
            assert!(
                hits.len() > 600 && hits.len() < 1400,
                "seed {seed}: {} hits out of 4000 for 1-in-4",
                hits.len()
            );
        }
        assert!(!sample_hit(1, 1, 0), "period 0 disables sampling");
        assert!(sample_hit(7, 3, 1), "period 1 samples everything");
        // Different seeds disagree somewhere.
        assert!((1..=100).any(|s| sample_hit(1, s, 4) != sample_hit(2, s, 4)));
    }

    #[test]
    fn collector_retains_slowest_n_and_sampled() {
        let _g = guard();
        configure(test_config(2, 3));
        let seed = 77;
        let mut expected_sampled = 0;
        for i in 0..20u64 {
            let trace = QueryTrace {
                trace_id: 1000 + i,
                root: "core.turn".into(),
                seq: 0,
                sampled: false,
                outcome: "completed".into(),
                total_us: 10 * (i + 1),
                queue_wait_us: 0,
                service_us: 0,
                engine_total_us: 0,
                worker: None,
                cache_hit: None,
                serial_fallback: false,
                framework: String::new(),
                hops: 0,
                evals: 0,
                pruned: 0,
                pages_read: 0,
                pages_cached: 0,
                prompt_tokens: 0,
                completion_tokens: 0,
                index_epoch: 0,
                deadline_us: 0,
                sched_batch: 0,
                mutation_in_progress: false,
                stages: Vec::new(),
                stages_dropped: 0,
            };
            offer(trace);
            if sample_hit(seed, i + 1, 3) {
                expected_sampled += 1;
            }
        }
        let slow = slowest_traces();
        assert_eq!(slow.len(), 2, "slowest-N cap");
        assert_eq!(slow[0].total_us, 200, "slowest first");
        assert_eq!(slow[1].total_us, 190);
        let sampled = sampled_traces();
        assert_eq!(sampled.len(), expected_sampled);
        for t in &sampled {
            assert!(sample_hit(seed, t.seq, 3), "seq {} not a sample hit", t.seq);
        }
        assert_eq!(finalized_count(), 20);
        let jsonl = to_jsonl();
        assert_eq!(jsonl.lines().count(), snapshot_traces().len());
        reset();
        assert!(snapshot_traces().is_empty());
        assert_eq!(finalized_count(), 0);
    }

    #[test]
    fn milestone_coverage_checks_witness_spans() {
        let stage = |name: &str| StageRecord {
            name: name.into(),
            parent: String::new(),
            dur_us: 1,
        };
        let mut trace = QueryTrace {
            trace_id: 1,
            root: "core.turn".into(),
            seq: 1,
            sampled: false,
            outcome: "completed".into(),
            total_us: 1,
            queue_wait_us: 0,
            service_us: 0,
            engine_total_us: 0,
            worker: None,
            cache_hit: None,
            serial_fallback: false,
            framework: String::new(),
            hops: 0,
            evals: 0,
            pruned: 0,
            pages_read: 0,
            pages_cached: 0,
            prompt_tokens: 0,
            completion_tokens: 0,
            index_epoch: 0,
            deadline_us: 0,
            sched_batch: 0,
            mutation_in_progress: false,
            stages: vec![
                stage("retrieval.must.encode"),
                stage("retrieval.must.weight_fuse"),
                stage("retrieval.must.index_search"),
                stage("llm.generate"),
            ],
            stages_dropped: 0,
        };
        assert!(missing_milestones(&trace).is_empty());
        trace.stages.retain(|s| s.name != "retrieval.must.encode");
        assert_eq!(missing_milestones(&trace), vec!["Encoding"]);
    }

    #[test]
    fn trace_serializes_and_roundtrips() {
        let trace = QueryTrace {
            trace_id: 9,
            root: "core.turn".into(),
            seq: 2,
            sampled: true,
            outcome: "completed".into(),
            total_us: 123,
            queue_wait_us: 4,
            service_us: 100,
            engine_total_us: 104,
            worker: Some(1),
            cache_hit: Some(true),
            serial_fallback: false,
            framework: "must".into(),
            hops: 1,
            evals: 2,
            pruned: 3,
            pages_read: 4,
            pages_cached: 5,
            prompt_tokens: 6,
            completion_tokens: 7,
            index_epoch: 3,
            deadline_us: 0,
            sched_batch: 0,
            mutation_in_progress: true,
            stages: vec![StageRecord {
                name: "core.turn".into(),
                parent: String::new(),
                dur_us: 123,
            }],
            stages_dropped: 0,
        };
        let json = serde_json::to_string(&trace).expect("serialize trace");
        let back: QueryTrace = serde_json::from_str(&json).expect("parse trace");
        assert_eq!(back, trace);
    }
}
