//! Live introspection endpoint (feature `serve`): a std-only
//! `TcpListener` serving the observability surfaces over HTTP/1.0.
//!
//! Routes:
//! - `/metrics` — Prometheus/OpenMetrics text exposition ([`crate::expo`])
//! - `/traces`  — retained [`crate::trace::QueryTrace`]s as JSONL
//! - `/report`  — the human-readable pipeline report ([`crate::report`])
//!
//! Off by default twice over: the module only compiles under the `serve`
//! feature, and nothing listens until [`serve`] is called. The handler
//! thread takes registry/collector snapshots per request and holds no
//! lock across socket I/O.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running introspection server; dropping it stops the accept loop.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        if let Ok(conn) = TcpStream::connect(self.addr) {
            drop(conn);
        }
        if let Some(join) = self.join.take() {
            drop(join.join());
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves the introspection
/// routes on a background thread until the handle drops.
///
/// # Errors
/// Returns the bind error if the address is unavailable.
pub fn serve(addr: &str) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop_flag.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => handle_connection(stream),
                Err(_) => crate::counter("obs.serve.accept_errors").inc(),
            }
        }
    });
    Ok(ServeHandle {
        addr: local,
        stop,
        join: Some(join),
    })
}

/// Routes a request path to `(status line, content type, body)`.
fn respond(path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            crate::expo::render(&crate::global().snapshot()),
        ),
        "/traces" => ("200 OK", "application/jsonl", crate::trace::to_jsonl()),
        "/report" => (
            "200 OK",
            "text/plain",
            crate::report::render(&crate::global().snapshot()),
        ),
        _ => (
            "404 Not Found",
            "text/plain",
            "unknown route; try /metrics, /traces, /report\n".to_string(),
        ),
    }
}

fn handle_connection(mut stream: TcpStream) {
    crate::counter("obs.serve.requests").inc();
    drop(stream.set_read_timeout(Some(Duration::from_millis(500))));
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap_or(0);
    if n == 0 {
        // Shutdown wake-up or an empty probe: nothing to answer.
        return;
    }
    let request = String::from_utf8_lossy(buf.get(..n).unwrap_or_default());
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = respond(path);
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if stream.write_all(header.as_bytes()).is_err() || stream.write_all(body.as_bytes()).is_err() {
        crate::counter("obs.serve.write_errors").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("send request");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read response");
        body
    }

    #[test]
    fn endpoint_serves_metrics_traces_and_report() {
        crate::counter("t.serve.probe").inc();
        let handle = serve("127.0.0.1:0").expect("bind");
        let addr = handle.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"));
        let body = metrics.split("\r\n\r\n").nth(1).expect("body");
        crate::expo::parse(body).expect("/metrics parses as exposition");
        assert!(body.contains("mqa_t_serve_probe_total"));

        let report = get(addr, "/report");
        assert!(report.contains("200 OK"));

        let traces = get(addr, "/traces");
        assert!(traces.starts_with("HTTP/1.0 200 OK"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));

        assert!(crate::counter("obs.serve.requests").get() >= 4);
        handle.stop();
    }
}
