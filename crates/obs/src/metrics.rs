//! Named counters, gauges, and log2-bucketed histograms behind a registry.
//!
//! The registry maps names to atomically-updated cells. Handles returned by
//! [`Registry::counter`] / [`Registry::gauge`] / [`Registry::histogram`]
//! are `Arc`s into those cells: hot loops resolve the name once and then
//! record with plain relaxed atomic ops, never touching the registry lock.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Number of log2 buckets; bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`.
pub const BUCKETS: usize = 64;

/// Locks `m`, recovering from poisoning: metric state is monotonic counts,
/// so data written before a panic elsewhere is still safe to serve.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A monotonically increasing named counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins named value (stored as `f64` bits in one atomic).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge with `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `i >= 1` holds
/// `[2^(i-1), 2^i - 1]`, so a value at an exact power of two `2^k` lands in
/// bucket `k + 1`. Quantiles report the upper edge of the covering bucket,
/// capped at the observed maximum — the estimate `e` for a true quantile
/// `v` therefore satisfies `v <= e < 2v`.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    /// Per-bucket exemplar: the trace id of the last traced sample that
    /// landed in the bucket (0 = no traced sample yet). Links aggregate
    /// tail buckets back to full `trace::QueryTrace` records.
    exemplars: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index covering `v`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// The largest value bucket `i` covers (used as the quantile estimate).
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        // INVARIANT: bucket_index clamps with .min(BUCKETS - 1), so the
        // index is always within `counts`.
        self.counts[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one sample attributed to a trace: like
    /// [`Histogram::record`], but also stamps `trace_id` as the covering
    /// bucket's exemplar (last writer wins; `trace_id` 0 means untraced
    /// and leaves the exemplar untouched).
    pub fn record_with_exemplar(&self, v: u64, trace_id: u64) {
        self.record(v);
        if trace_id != 0 {
            // INVARIANT: bucket_index clamps with .min(BUCKETS - 1), so
            // the index is always within `exemplars`.
            self.exemplars[Self::bucket_index(v)].store(trace_id, Ordering::Relaxed);
        }
    }

    /// The exemplar trace id of bucket `i` (0 = none), if `i` is in range.
    pub fn exemplar(&self, i: usize) -> Option<u64> {
        self.exemplars.get(i).map(|e| e.load(Ordering::Relaxed))
    }

    /// The number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile estimate (`q` clamped to `[0, 1]`); 0 when empty.
    ///
    /// Returns the upper edge of the bucket containing the rank-`ceil(q*n)`
    /// sample, capped at the observed maximum, so the estimate is within a
    /// factor of two above the true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, bucket) in self.counts.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Snapshot of the derived statistics, including the non-empty
    /// buckets (cumulative counts) and their exemplars.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, bucket) in self.counts.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            // An exemplar slot still holding the sentinel 0 means the
            // bucket never saw a traced sample; the snapshot encodes that
            // absence as `None` so no downstream consumer can mistake it
            // for a real trace id 0.
            buckets.push(HistogramBucket {
                le: Self::bucket_upper(i),
                count: cumulative,
                exemplar: self.exemplar(i).filter(|&id| id != 0),
            });
        }
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
            buckets,
        }
    }
}

/// Per-span-name aggregate: first-seen parent plus a duration histogram.
struct SpanStat {
    parent: Option<String>,
    hist: Histogram,
}

/// The metric registry: names to counters, gauges, histograms, span stats.
///
/// Use [`global()`] for the process-wide instance; construct locally in
/// tests that need exact, isolated values.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// An empty registry (tests; production code uses [`global()`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// Steady-state lookups take the borrowed fast path: an existing name
    /// clones the `Arc` without copying the key, so a warmed registry
    /// performs zero heap allocations per call (the alloc gate's serving
    /// cone relies on this).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        if let Some(cell) = map.get(name) {
            return Counter(Arc::clone(cell));
        }
        // ALLOC: first use of a metric name registers it; never hit again.
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// The gauge named `name`, created on first use (initially 0.0).
    /// Existing names take the allocation-free fast path (see
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        if let Some(cell) = map.get(name) {
            return Gauge(Arc::clone(cell));
        }
        // ALLOC: first use of a metric name registers it; never hit again.
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge(Arc::clone(cell))
    }

    /// The histogram named `name`, created on first use. Existing names
    /// take the allocation-free fast path (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        if let Some(cell) = map.get(name) {
            return Arc::clone(cell);
        }
        // ALLOC: first use of a metric name registers it; never hit again.
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()));
        Arc::clone(cell)
    }

    /// Folds one closed span into the per-name aggregate. The first
    /// recorded parent wins (span trees are stable per call site).
    /// Existing names take the allocation-free fast path (see
    /// [`Registry::counter`]).
    pub fn record_span(&self, name: &str, parent: Option<&str>, dur_us: u64) {
        let mut map = lock(&self.spans);
        if let Some(stat) = map.get_mut(name) {
            if stat.parent.is_none() {
                if let Some(p) = parent {
                    // ALLOC: first parent attribution for the name; at
                    // most once per span name.
                    stat.parent = Some(p.to_string());
                }
            }
            stat.hist.record(dur_us);
            return;
        }
        // ALLOC: first close of a span name registers it; never hit again.
        let stat = map.entry(name.to_string()).or_insert_with(|| SpanStat {
            parent: None,
            hist: Histogram::new(),
        });
        if stat.parent.is_none() {
            if let Some(p) = parent {
                // ALLOC: recorded once, at first registration of this span name.
                stat.parent = Some(p.to_string());
            }
        }
        stat.hist.record(dur_us);
    }

    /// A consistent, serializable view of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(name, cell)| GaugeSnapshot {
                name: name.clone(),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            })
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        let spans = lock(&self.spans)
            .iter()
            .map(|(name, stat)| SpanSnapshot {
                name: name.clone(),
                parent: stat.parent.clone(),
                count: stat.hist.count(),
                total_us: stat.hist.sum(),
                p50_us: stat.hist.quantile(0.50),
                p99_us: stat.hist.quantile(0.99),
                max_us: stat.hist.max(),
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }

    /// Drops every registered metric. Handles obtained earlier keep
    /// working but are detached from the registry afterwards.
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
        lock(&self.spans).clear();
    }
}

/// One counter in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name (`<crate>.<component>.<metric>`).
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Median estimate (upper bucket edge, capped at max).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty buckets with cumulative counts and exemplar trace ids.
    pub buckets: Vec<HistogramBucket>,
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Largest value the bucket covers (Prometheus `le`).
    pub le: u64,
    /// Cumulative sample count up to and including this bucket.
    pub count: u64,
    /// Trace id of the last traced sample in the bucket; `None` when the
    /// bucket never saw a traced sample (the exposition then omits the
    /// exemplar annotation entirely rather than emitting `trace_id=0`).
    pub exemplar: Option<u64>,
}

/// One span aggregate in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Parent span name; `None` for roots (spans that closed with no
    /// recorded parent), so roots are typed rather than spelled `""`.
    pub parent: Option<String>,
    /// Number of closed instances.
    pub count: u64,
    /// Total microseconds across instances.
    pub total_us: u64,
    /// Median duration estimate in microseconds.
    pub p50_us: u64,
    /// 99th-percentile duration estimate in microseconds.
    pub p99_us: u64,
    /// Longest instance in microseconds.
    pub max_us: u64,
}

/// A serializable point-in-time view of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// The counter value for `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram snapshot for `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The span aggregate for `name`, if present.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("t.c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("t.c").get(), 5, "same cell on re-lookup");
        let g = r.gauge("t.g");
        g.set(2.5);
        assert!((r.gauge("t.g").get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_boundaries_at_exact_powers_of_two() {
        // Bucket 0 is exactly zero; 2^k lands in bucket k+1; 2^k - 1 in k.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        for k in 1..60usize {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k + 1, "2^{k}");
            assert_eq!(Histogram::bucket_index(v - 1), k, "2^{k} - 1");
            assert_eq!(Histogram::bucket_index(v + 1), k + 1, "2^{k} + 1");
        }
        // Huge values clamp into the last bucket.
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        // Upper edges are one below the next power of two.
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(5), 31);
        assert_eq!(Histogram::bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantile_estimate_within_factor_two() {
        let h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).map(|i| i * 7 + 3).collect();
        for &s in &samples {
            h.record(s);
        }
        for &(q, rank) in &[(0.5, 500usize), (0.9, 900), (0.99, 990)] {
            let truth = samples[rank - 1];
            let est = h.quantile(q);
            assert!(est >= truth, "q={q}: est {est} < truth {truth}");
            assert!(est < truth * 2, "q={q}: est {est} >= 2x truth {truth}");
        }
        assert_eq!(h.quantile(1.0), *samples.last().expect("nonempty"));
    }

    #[test]
    fn exemplars_stamp_the_covering_bucket() {
        let h = Histogram::new();
        h.record_with_exemplar(100, 41); // bucket 7 ([64, 127])
        h.record_with_exemplar(100, 42); // same bucket: last writer wins
        h.record_with_exemplar(5000, 0); // untraced: no exemplar
        h.record(70); // plain record never touches exemplars
        assert_eq!(h.exemplar(Histogram::bucket_index(100)), Some(42));
        assert_eq!(h.exemplar(Histogram::bucket_index(5000)), Some(0));
        assert_eq!(h.exemplar(BUCKETS + 5), None, "out of range");
        let snap = h.snapshot("t.exemplar.lat");
        assert_eq!(snap.count, 4);
        let b100 = snap
            .buckets
            .iter()
            .find(|b| b.le == 127)
            .expect("bucket [64,127] present");
        assert_eq!(b100.exemplar, Some(42));
        let b5000 = snap
            .buckets
            .iter()
            .find(|b| b.le == 8191)
            .expect("bucket [4096,8191] present");
        assert_eq!(
            b5000.exemplar, None,
            "an untraced bucket must snapshot as None, not trace id 0"
        );
        assert_eq!(b100.count, 3, "cumulative count includes 70 and 100s");
        let last = snap.buckets.last().expect("nonempty");
        assert_eq!(last.count, 4, "last cumulative count = total");
        assert!(snap.buckets.windows(2).all(|w| w[0].le < w[1].le));
    }

    #[test]
    fn quantile_of_empty_and_single() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(42);
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(0.5), 42);
        assert_eq!(h.quantile(1.0), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.sum(), 42);
    }

    #[test]
    fn snapshot_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").add(1);
        r.histogram("h.lat").record(100);
        r.record_span("root", None, 50);
        r.record_span("child", Some("root"), 20);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "a.one");
        assert_eq!(snap.counter("b.two"), Some(2));
        assert_eq!(snap.histogram("h.lat").map(|h| h.count), Some(1));
        let child = snap.span("child").expect("child span");
        assert_eq!(child.parent.as_deref(), Some("root"));
        let root = snap.span("root").expect("root span");
        assert_eq!(root.parent, None, "roots carry a typed None parent");
        assert_eq!(child.count, 1);
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn snapshot_serializes_and_roundtrips() {
        let r = Registry::new();
        r.counter("x.calls").inc();
        r.gauge("x.ratio").set(0.75);
        r.histogram("x.lat").record(9);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize snapshot");
        assert!(json.contains("\"x.calls\""));
        let back: Snapshot = serde_json::from_str(&json).expect("parse snapshot");
        assert_eq!(back, snap);
    }
}
