//! RAII timing spans with per-thread parent/child nesting.
//!
//! [`span`] opens a guard and pushes it on a thread-local stack; the guard
//! records its duration into the global registry (and the journal, when
//! enabled) on [`SpanGuard::finish`] or on drop — including drops during
//! unwinding, so a task that returns `Err` (or panics) mid-span still
//! closes its spans in order.
//!
//! Work handed to fresh threads (the parallel DAG executor) starts with an
//! empty stack; use [`span_under`] there to attach the span to its logical
//! parent by name.

use crate::journal;
use crate::metrics::global;
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A span name: either a `&'static str` (the common case — every
/// fixed-name call site) or an owned `String` for genuinely dynamic names
/// (per-task DAG spans). Taking `impl Into<SpanName>` instead of
/// `impl Into<String>` keeps static-name spans off the heap entirely:
/// opening and closing such a span performs no allocation.
pub type SpanName = Cow<'static, str>;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates the next id from the span id space (shared with trace ids,
/// so a trace id never collides with a span id).
pub(crate) fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Open spans on this thread, innermost last: `(id, name)`. Names are
    /// [`SpanName`]s, so pushing a static-name span clones a borrow, not a
    /// `String`.
    static STACK: RefCell<Vec<(u64, SpanName)>> = const { RefCell::new(Vec::new()) };
}

/// An open span; closing records its duration under its name.
///
/// Dropping the guard closes the span; call [`SpanGuard::finish`] to also
/// get the measured duration back.
#[must_use = "dropping immediately times nothing; bind to `_guard` or call finish()"]
pub struct SpanGuard {
    id: u64,
    name: SpanName,
    parent: Option<SpanName>,
    start: Instant,
    closed: bool,
}

/// Opens a span named `name` nested under the innermost open span on this
/// thread (a root span if none is open).
pub fn span(name: impl Into<SpanName>) -> SpanGuard {
    open(name.into(), None)
}

/// Opens a span with an explicit parent name, for work running on a thread
/// whose stack does not contain the logical parent (e.g. scoped workers).
pub fn span_under(name: impl Into<SpanName>, parent: &str) -> SpanGuard {
    // ALLOC: explicit parents are cross-thread attribution under active
    // tracing, which copies trace state by design; the common nested
    // `span()` path stays allocation-free.
    open(name.into(), Some(SpanName::Owned(parent.to_string())))
}

fn open(name: SpanName, explicit_parent: Option<SpanName>) -> SpanGuard {
    let id = next_id();
    let (stack_parent, parent_id, depth) = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let top = s.last().map(|(pid, pname)| (pname.clone(), *pid));
        s.push((id, name.clone()));
        let depth = s.len();
        match top {
            Some((pname, pid)) => (Some(pname), Some(pid), depth),
            None => (None, None, depth),
        }
    });
    let parent = explicit_parent.or(stack_parent);
    journal::span_open(id, &name, parent_id, depth);
    SpanGuard {
        id,
        name,
        parent,
        start: Instant::now(),
        closed: false,
    }
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span and returns its duration.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let dur = self.start.elapsed();
        if self.closed {
            return dur;
        }
        self.closed = true;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // rposition + truncate tolerates mis-nested closes: everything
            // opened above this span on the same thread is popped with it.
            if let Some(pos) = s.iter().rposition(|(id, _)| *id == self.id) {
                s.truncate(pos);
            }
        });
        let us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        global().record_span(&self.name, self.parent.as_deref(), us);
        crate::trace::record_stage(&self.name, self.parent.as_deref(), us);
        journal::span_close(self.id, &self.name, us);
        dur
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.closed {
            let _ = self.close();
        }
    }
}

/// Clears this thread's open-span stack, returning how many entries were
/// discarded.
///
/// Guards normally pop themselves even during unwinding, but a worker
/// that catches a job's panic (`catch_unwind`) can be left with stale
/// entries when the job leaked a guard (e.g. `mem::forget`) or panicked
/// between the stack push and guard construction. Those stale entries
/// would silently become the *parent* of every span the next job opens on
/// the same thread — call this after catching a job panic, alongside the
/// scratch rebuild.
pub fn reset_thread_stack() -> usize {
    let discarded = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let n = s.len();
        s.clear();
        n
    });
    if discarded > 0 {
        crate::counter("obs.span.stack_resets").inc();
    }
    discarded
}

/// A minimal monotonic timer for call sites that want a raw duration to
/// feed a histogram or counter rather than a named span. `Copy` so a
/// started stopwatch can be embedded in value types (e.g. a deadline
/// carried alongside a queued job) without re-reading the clock.
#[derive(Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the stopwatch.
    #[must_use = "a stopwatch only matters if elapsed() is read"]
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Microseconds since [`Stopwatch::start`], saturating.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth() -> usize {
        STACK.with(|s| s.borrow().len())
    }

    #[test]
    fn nesting_records_parent_links() {
        let outer = span("test.span.outer");
        let inner = span("test.span.inner");
        assert_eq!(depth(), 2);
        drop(inner);
        assert_eq!(depth(), 1);
        let _ = outer.finish();
        assert_eq!(depth(), 0);
        let snap = global().snapshot();
        let inner = snap.span("test.span.inner").expect("inner recorded");
        assert_eq!(inner.parent.as_deref(), Some("test.span.outer"));
        assert!(inner.count >= 1);
    }

    #[test]
    fn stack_unwinds_when_task_returns_err_mid_span() {
        fn faulty() -> Result<(), String> {
            let _guard = span("test.span.faulty");
            let _deeper = span("test.span.faulty.step");
            Err("boom".to_string())
        }
        assert_eq!(depth(), 0);
        assert!(faulty().is_err());
        assert_eq!(depth(), 0, "early return must pop all spans");
        let snap = global().snapshot();
        assert!(snap.span("test.span.faulty").is_some());
        let step = snap.span("test.span.faulty.step").expect("step recorded");
        assert_eq!(step.parent.as_deref(), Some("test.span.faulty"));
    }

    #[test]
    fn stack_unwinds_across_panic() {
        let result = std::panic::catch_unwind(|| {
            let _guard = span("test.span.panicky");
            panic!("mid-span panic");
        });
        assert!(result.is_err());
        assert_eq!(depth(), 0, "panic unwinding must pop the span");
    }

    #[test]
    fn explicit_parent_overrides_empty_stack() {
        let handle = std::thread::spawn(|| {
            let g = span_under("test.span.worker", "test.span.coordinator");
            g.finish()
        });
        let dur = handle.join().expect("worker thread");
        assert!(dur.as_nanos() > 0 || dur.is_zero());
        let snap = global().snapshot();
        let worker = snap.span("test.span.worker").expect("worker recorded");
        assert_eq!(worker.parent.as_deref(), Some("test.span.coordinator"));
    }

    #[test]
    fn reset_thread_stack_clears_leaked_parent_linkage() {
        // Simulate a job that leaked a guard mid-panic: the entry stays on
        // the stack because Drop never ran.
        std::mem::forget(span("test.span.leaked"));
        assert_eq!(depth(), 1);
        assert_eq!(reset_thread_stack(), 1);
        assert_eq!(depth(), 0);
        // The next span on this thread must be a root, not a child of the
        // leaked entry.
        drop(span("test.span.after_reset"));
        let snap = global().snapshot();
        let after = snap.span("test.span.after_reset").expect("recorded");
        assert_eq!(after.parent, None, "stale parent survived the reset");
        assert_eq!(reset_thread_stack(), 0, "idempotent on an empty stack");
    }

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start();
        let us = sw.elapsed_us();
        assert!(us <= sw.elapsed_us());
    }
}
