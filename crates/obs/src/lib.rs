//! `mqa-obs` — the workspace observability layer.
//!
//! Dependency-free (std plus the in-tree `compat/serde*` crates), so every
//! other crate can instrument itself without changing the hermetic build.
//! Three cooperating pieces:
//!
//! 1. **Metrics** ([`metrics`]): a global [`Registry`] of named counters,
//!    gauges, and log2-bucketed histograms. Recording is lock-cheap —
//!    handles hold `Arc<AtomicU64>`s, so hot loops never touch the registry
//!    mutex after the first lookup.
//! 2. **Spans** ([`span`]): RAII timing guards with parent/child nesting
//!    tracked on a per-thread stack. Closing a span folds its duration into
//!    a per-name histogram in the registry and (when enabled) appends
//!    open/close records to the journal.
//! 3. **Journal** ([`journal`]): a bounded in-memory JSONL event log with
//!    monotonic microsecond timestamps, flushed to `results/obs/*.jsonl`.
//! 4. **Traces** ([`trace`]): per-query causal chains carried across the
//!    engine's thread boundary, tail-sampled into a bounded collector
//!    (slowest-N plus a deterministic 1-in-K sample). Histogram buckets
//!    carry *exemplar* trace ids linking aggregates back to traces.
//! 5. **Exposition** ([`expo`], and the feature-gated [`serve`] endpoint):
//!    Prometheus/OpenMetrics text rendering of a snapshot, with a
//!    validating parser used by tests and the `mqa-xtask trace` gate.
//!
//! Metric names follow `<crate>.<component>.<metric>` (see DESIGN.md §9).
//! The [`report`] module renders a registry snapshot as a human-readable
//! pipeline report with a per-milestone latency breakdown.
//!
//! ```
//! let _turn = mqa_obs::span("doc.example.turn");
//! mqa_obs::counter("doc.example.calls").inc();
//! let snap = mqa_obs::global().snapshot();
//! assert!(snap.counters.iter().any(|c| c.name == "doc.example.calls"));
//! ```

pub mod expo;
pub mod journal;
pub mod metrics;
pub mod report;
#[cfg(feature = "serve")]
pub mod serve;
pub mod span;
pub mod trace;

pub use journal::Journal;
pub use metrics::{
    global, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramBucket,
    HistogramSnapshot, Registry, Snapshot, SpanSnapshot,
};
pub use span::{span, span_under, SpanGuard, Stopwatch};
pub use trace::{QueryTrace, StageRecord, TraceConfig, TraceContext, TraceHandle};

/// Shorthand for [`Registry::counter`] on the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Shorthand for [`Registry::gauge`] on the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Shorthand for [`Registry::histogram`] on the global registry.
pub fn histogram(name: &str) -> std::sync::Arc<Histogram> {
    global().histogram(name)
}
