//! A bounded JSONL event journal with monotonic microsecond timestamps.
//!
//! Disabled by default: the fast path is one relaxed atomic load, so
//! instrumented code pays nothing in production runs. When enabled (the
//! `mqa-xtask obs` scenario, tests), span opens/closes, structured events,
//! and metric snapshots are appended as one JSON object per line, up to a
//! configured cap; lines past the cap are counted as dropped rather than
//! evicting earlier context.
//!
//! Line shapes:
//!
//! ```text
//! {"ts_us":12,"kind":"span_open","name":"core.turn","id":7,"parent":3,"depth":2}
//! {"ts_us":90,"kind":"span_close","name":"core.turn","id":7,"dur_us":78}
//! {"ts_us":95,"kind":"event","name":"dag.execute","mode":"parallel"}
//! {"ts_us":99,"kind":"snapshot","metrics":{...}}
//! ```

use crate::metrics::Snapshot;
use serde::{Number, Serialize, Value};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default line cap for [`Journal::enable`] callers that don't care.
pub const DEFAULT_CAP: usize = 100_000;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct State {
    cap: usize,
    lines: Vec<String>,
    dropped: u64,
    t0: Option<Instant>,
}

/// A bounded JSONL event log. Use [`global()`] in instrumented code;
/// construct locally in tests that need isolation.
pub struct Journal {
    enabled: AtomicBool,
    state: Mutex<State>,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide journal.
pub fn global() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(Journal::new)
}

impl Journal {
    /// A disabled, empty journal.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            state: Mutex::new(State {
                cap: DEFAULT_CAP,
                lines: Vec::new(),
                dropped: 0,
                t0: None,
            }),
        }
    }

    /// Starts recording: clears prior lines, sets the line cap, and zeroes
    /// the monotonic clock.
    pub fn enable(&self, cap: usize) {
        {
            let mut s = lock(&self.state);
            s.cap = cap;
            s.lines.clear();
            s.dropped = 0;
            s.t0 = Some(Instant::now());
        }
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops recording; accumulated lines remain readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether the journal is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Appends one record built from `fields` (after the standard `ts_us`
    /// and `kind` entries). No-op while disabled; counted as dropped once
    /// the cap is reached.
    pub fn push(&self, kind: &str, fields: Vec<(String, Value)>) {
        if !self.is_enabled() {
            return;
        }
        let mut s = lock(&self.state);
        if s.lines.len() >= s.cap {
            s.dropped += 1;
            return;
        }
        let ts_us =
            s.t0.map(|t0| u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX))
                .unwrap_or(0);
        // ALLOC: journal recording only — `push` early-returns while the journal is disabled (the steady-state default).
        let mut entries = Vec::with_capacity(fields.len() + 2);
        entries.push(("ts_us".to_string(), Value::Number(Number::UInt(ts_us))));
        entries.push(("kind".to_string(), Value::String(kind.to_string())));
        entries.extend(fields);
        match serde_json::to_string(&Value::Object(entries)) {
            Ok(line) => s.lines.push(line),
            Err(_) => s.dropped += 1,
        }
    }

    /// A copy of the recorded lines, in order.
    pub fn lines(&self) -> Vec<String> {
        // ALLOC: diagnostic snapshot of the journal; not on the serving path.
        lock(&self.state).lines.clone()
    }

    /// Number of records rejected because the cap was reached.
    pub fn dropped(&self) -> u64 {
        lock(&self.state).dropped
    }

    /// Writes the journal as JSONL to `path` (parent directory must exist).
    ///
    /// # Errors
    /// Propagates filesystem errors from the write.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let s = lock(&self.state);
        let mut out = s.lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

/// String field helper.
fn vs(s: &str) -> Value {
    // ALLOC: journal field construction; reached only from enabled-journal records.
    Value::String(s.to_string())
}

/// Unsigned field helper.
fn vu(n: u64) -> Value {
    Value::Number(Number::UInt(n))
}

/// Records a structured event named `name` with extra `fields` on the
/// global journal.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    let j = global();
    if !j.is_enabled() {
        return;
    }
    let mut entries = vec![("name".to_string(), vs(name))];
    entries.extend(fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
    j.push("event", entries);
}

/// [`event`] for callers whose extra fields are all strings — avoids a
/// `serde` dependency at the instrumentation site.
pub fn event_str(name: &str, fields: &[(&str, &str)]) {
    let j = global();
    if !j.is_enabled() {
        return;
    }
    let mut entries = vec![("name".to_string(), vs(name))];
    entries.extend(fields.iter().map(|(k, v)| (k.to_string(), vs(v))));
    j.push("event", entries);
}

/// Embeds a full metrics snapshot as one journal record.
pub fn snapshot_event(snap: &Snapshot) {
    let j = global();
    if !j.is_enabled() {
        return;
    }
    j.push("snapshot", vec![("metrics".to_string(), snap.to_value())]);
}

pub(crate) fn span_open(id: u64, name: &str, parent_id: Option<u64>, depth: usize) {
    let j = global();
    if !j.is_enabled() {
        return;
    }
    // ALLOC: journal recording only — enabled-checked above.
    let mut entries = vec![("name".to_string(), vs(name)), ("id".to_string(), vu(id))];
    if let Some(pid) = parent_id {
        entries.push(("parent".to_string(), vu(pid)));
    }
    // ALLOC: journal recording only — enabled-checked above.
    entries.push(("depth".to_string(), vu(depth as u64)));
    j.push("span_open", entries);
}

pub(crate) fn span_close(id: u64, name: &str, dur_us: u64) {
    let j = global();
    if !j.is_enabled() {
        return;
    }
    // ALLOC: journal recording only — enabled-checked above.
    let mut entries = vec![("name".to_string(), vs(name)), ("id".to_string(), vu(id))];
    // ALLOC: still inside the enabled-only branch (checked above).
    entries.push(("dur_us".to_string(), vu(dur_us)));
    j.push("span_close", entries);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::new();
        j.push("event", vec![("name".to_string(), vs("x"))]);
        assert!(j.lines().is_empty());
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn lines_are_json_with_monotonic_timestamps() {
        let j = Journal::new();
        j.enable(16);
        j.push("event", vec![("name".to_string(), vs("first"))]);
        j.push("event", vec![("name".to_string(), vs("second"))]);
        let lines = j.lines();
        assert_eq!(lines.len(), 2);
        let mut prev = 0u64;
        for line in &lines {
            let v = serde_json::parse_value_str(line).expect("valid JSON line");
            let obj = v.as_object_for("journal line").expect("object");
            let ts = obj
                .iter()
                .find(|(k, _)| k == "ts_us")
                .and_then(|(_, v)| match v {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                })
                .expect("ts_us field");
            assert!(ts >= prev, "timestamps must be monotonic");
            prev = ts;
            assert!(line.contains("\"kind\":\"event\""));
        }
    }

    #[test]
    fn truncation_keeps_first_cap_lines_and_counts_dropped() {
        let j = Journal::new();
        j.enable(3);
        for i in 0..10 {
            j.push("event", vec![("name".to_string(), vs(&format!("e{i}")))]);
        }
        let lines = j.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("e0"));
        assert!(lines[2].contains("e2"));
        assert_eq!(j.dropped(), 7);
    }

    #[test]
    fn reenable_clears_previous_run() {
        let j = Journal::new();
        j.enable(8);
        j.push("event", vec![("name".to_string(), vs("old"))]);
        j.enable(8);
        assert!(j.lines().is_empty());
        assert_eq!(j.dropped(), 0);
        j.disable();
        assert!(!j.is_enabled());
    }

    #[test]
    fn write_to_emits_trailing_newline_jsonl() {
        let j = Journal::new();
        j.enable(4);
        j.push("event", vec![("name".to_string(), vs("a"))]);
        let path =
            std::env::temp_dir().join(format!("mqa-obs-journal-{}.jsonl", std::process::id()));
        j.write_to(&path).expect("write journal");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.ends_with('\n'));
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
