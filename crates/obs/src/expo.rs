//! Prometheus/OpenMetrics text exposition of a metrics [`Snapshot`].
//!
//! [`render`] turns a snapshot into the text format served on `/metrics`:
//! counters (`_total` suffix), gauges, histograms (cumulative `le`
//! buckets, `_sum`/`_count`, with OpenMetrics *exemplars* linking buckets
//! to trace ids), and span aggregates as summaries (quantile series).
//! Metric names are `mqa_` + the dotted instrument name with separators
//! mapped to `_`, so `engine.query.latency_us` becomes
//! `mqa_engine_query_latency_us`.
//!
//! [`parse`] is a validating parser for the same dialect. It exists so
//! the `mqa-xtask trace` gate (and unit tests here) can assert the
//! endpoint's output *parses* as well-formed exposition text — family
//! declarations, name charset, label syntax, cumulative bucket counts,
//! exemplar shape, and the trailing `# EOF` — without a Prometheus
//! binary in the build.

use crate::metrics::Snapshot;
use std::collections::BTreeMap;

/// Maps a dotted instrument name onto the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed with `mqa_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("mqa_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_family(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders `snapshot` as Prometheus/OpenMetrics text exposition,
/// terminated with `# EOF`.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let name = sanitize(&c.name) + "_total";
        push_family(&mut out, &name, "counter");
        out.push_str(&format!("{name} {}\n", c.value));
    }
    for g in &snapshot.gauges {
        let name = sanitize(&g.name);
        push_family(&mut out, &name, "gauge");
        out.push_str(&format!("{name} {}\n", fmt_f64(g.value)));
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        push_family(&mut out, &name, "histogram");
        for b in &h.buckets {
            let line = format!("{name}_bucket{{le=\"{}\"}} {}", b.le, b.count);
            out.push_str(&line);
            if let Some(exemplar) = b.exemplar {
                // OpenMetrics exemplar: `# {labels} value`. The bucket
                // upper edge stands in for the unrecorded raw sample. A
                // bucket with no traced sample carries no annotation at
                // all — never a fabricated `trace_id="0"`.
                out.push_str(&format!(" # {{trace_id=\"{exemplar}\"}} {}", b.le));
            }
            out.push('\n');
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    for s in &snapshot.spans {
        let name = sanitize(&format!("span.{}.us", s.name));
        push_family(&mut out, &name, "summary");
        out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", s.p50_us));
        out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", s.p99_us));
        out.push_str(&format!("{name}_sum {}\n", s.total_us));
        out.push_str(&format!("{name}_count {}\n", s.count));
    }
    out.push_str("# EOF\n");
    out
}

/// What [`parse`] saw, for gate assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpoStats {
    /// `# TYPE` family declarations.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
    /// Samples carrying an OpenMetrics exemplar.
    pub exemplars: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `name{labels}` into the name and the raw label body (no braces),
/// validating label syntax (`key="value"` pairs, comma-separated).
fn split_labels(sample: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(open) = sample.find('{') else {
        return Ok((sample.to_string(), Vec::new()));
    };
    let name = sample.get(..open).unwrap_or_default().to_string();
    let rest = sample.get(open + 1..).unwrap_or_default();
    let Some(body) = rest.strip_suffix('}') else {
        return Err(format!("unclosed label braces in `{sample}`"));
    };
    let mut labels = Vec::new();
    for pair in body.split(',') {
        if pair.is_empty() {
            continue;
        }
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("label pair `{pair}` has no `=`"));
        };
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("label value in `{pair}` is not quoted"))?;
        if !valid_metric_name(key) {
            return Err(format!("bad label name `{key}`"));
        }
        labels.push((key.to_string(), value.to_string()));
    }
    Ok((name, labels))
}

fn parse_value(text: &str) -> Result<f64, String> {
    if text == "+Inf" {
        return Ok(f64::INFINITY);
    }
    text.parse::<f64>()
        .map_err(|e| format!("bad sample value `{text}`: {e}"))
}

/// Validates Prometheus/OpenMetrics text exposition as produced by
/// [`render`].
///
/// # Errors
/// Returns a description of the first malformed line, undeclared family,
/// non-cumulative histogram, or missing `# EOF` terminator.
pub fn parse(text: &str) -> Result<ExpoStats, String> {
    let mut stats = ExpoStats {
        families: 0,
        samples: 0,
        exemplars: 0,
    };
    let mut declared: BTreeMap<String, String> = BTreeMap::new();
    // Histogram bookkeeping: family -> (last le, last cumulative count).
    let mut last_bucket: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut inf_bucket: BTreeMap<String, f64> = BTreeMap::new();
    let mut saw_eof = false;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if saw_eof && !line.trim().is_empty() {
            return Err(format!("line {n}: content after # EOF"));
        }
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment == "EOF" {
                saw_eof = true;
            } else if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or_default();
                let kind = parts.next().unwrap_or_default();
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad family name `{name}`"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary") {
                    return Err(format!("line {n}: unknown family kind `{kind}`"));
                }
                declared.insert(name.to_string(), kind.to_string());
            } else if comment.strip_prefix("HELP ").is_none() {
                return Err(format!("line {n}: unrecognized comment `{line}`"));
            }
            continue;
        }
        // Sample line: `name[{labels}] value[ # {exemplar-labels} value]`.
        let (sample_part, exemplar_part) = match line.split_once(" # ") {
            Some((s, e)) => (s, Some(e)),
            None => (line, None),
        };
        let Some((series, value_text)) = sample_part.rsplit_once(' ') else {
            return Err(format!("line {n}: sample has no value"));
        };
        let value = parse_value(value_text).map_err(|e| format!("line {n}: {e}"))?;
        let (name, labels) = split_labels(series).map_err(|e| format!("line {n}: {e}"))?;
        if !valid_metric_name(&name) {
            return Err(format!("line {n}: bad metric name `{name}`"));
        }
        let family = ["_bucket", "_sum", "_count", "_total"]
            .iter()
            .find_map(|suffix| name.strip_suffix(suffix))
            .filter(|base| declared.contains_key(*base))
            .map_or_else(|| name.clone(), str::to_string);
        if !declared.contains_key(&family) {
            return Err(format!(
                "line {n}: sample `{name}` has no # TYPE declaration"
            ));
        }
        if let Some(ex) = exemplar_part {
            if !name.ends_with("_bucket") {
                return Err(format!("line {n}: exemplar on non-bucket series `{name}`"));
            }
            let Some((ex_labels, ex_value)) = ex.rsplit_once(' ') else {
                return Err(format!("line {n}: exemplar has no value"));
            };
            let trimmed = ex_labels.trim();
            let inner = trimmed
                .strip_prefix('{')
                .and_then(|v| v.strip_suffix('}'))
                .ok_or_else(|| format!("line {n}: exemplar labels not braced"))?;
            if !inner.contains('=') {
                return Err(format!("line {n}: exemplar labels have no pair"));
            }
            parse_value(ex_value).map_err(|e| format!("line {n}: exemplar {e}"))?;
            stats.exemplars += 1;
        }
        if name.ends_with("_bucket") {
            let le_text = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("line {n}: bucket sample without le label"))?;
            let le = parse_value(&le_text).map_err(|e| format!("line {n}: {e}"))?;
            if le.is_infinite() {
                inf_bucket.insert(family.clone(), value);
            }
            if let Some((prev_le, prev_count)) = last_bucket.get(&family) {
                if le <= *prev_le {
                    return Err(format!("line {n}: bucket le not increasing in `{family}`"));
                }
                if value < *prev_count {
                    return Err(format!(
                        "line {n}: bucket counts not cumulative in `{family}`"
                    ));
                }
            }
            last_bucket.insert(family.clone(), (le, value));
        } else if name.ends_with("_count")
            && declared.get(&family).is_some_and(|k| k == "histogram")
        {
            counts.insert(family.clone(), value);
        }
        stats.samples += 1;
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    for (family, kind) in &declared {
        if kind != "histogram" {
            continue;
        }
        match (inf_bucket.get(family), counts.get(family)) {
            (Some(inf), Some(count)) if (inf - count).abs() < 0.5 => {}
            (Some(_), Some(_)) => {
                return Err(format!("histogram `{family}`: +Inf bucket != _count"));
            }
            _ => {
                return Err(format!(
                    "histogram `{family}` missing +Inf bucket or _count"
                ));
            }
        }
    }
    stats.families = declared.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn sanitize_maps_dots_to_underscores() {
        assert_eq!(
            sanitize("engine.query.latency_us"),
            "mqa_engine_query_latency_us"
        );
        assert_eq!(sanitize("a-b.c"), "mqa_a_b_c");
    }

    #[test]
    fn rendered_registry_parses_clean() {
        let r = Registry::new();
        r.counter("t.expo.calls").add(3);
        r.gauge("t.expo.depth").set(1.5);
        let h = r.histogram("t.expo.latency_us");
        h.record_with_exemplar(100, 41);
        h.record_with_exemplar(9000, 42);
        h.record(7);
        r.record_span("t.expo.turn", None, 250);
        let text = render(&r.snapshot());
        let stats = parse(&text).expect("rendered exposition must parse");
        assert!(stats.families >= 4, "counter+gauge+histogram+summary");
        assert_eq!(stats.exemplars, 2, "both traced buckets carry exemplars");
        assert!(text.contains("mqa_t_expo_calls_total 3"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.contains("trace_id=\"42\""));
        assert!(text.contains("mqa_span_t_expo_turn_us{quantile=\"0.5\"}"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn parser_rejects_malformed_exposition() {
        assert!(parse("no eof at all\n").is_err());
        assert!(parse("# EOF\nx 1\n").is_err(), "content after EOF");
        assert!(
            parse("orphan_metric 1\n# EOF\n").is_err(),
            "sample without TYPE"
        );
        assert!(
            parse("# TYPE m histogram\nm_bucket{le=\"10\"} 5\nm_bucket{le=\"5\"} 6\n# EOF\n")
                .is_err(),
            "non-increasing le"
        );
        assert!(
            parse("# TYPE m histogram\nm_bucket{le=\"5\"} 5\nm_bucket{le=\"10\"} 3\n# EOF\n")
                .is_err(),
            "non-cumulative counts"
        );
        assert!(
            parse("# TYPE m histogram\nm_bucket{le=\"+Inf\"} 2\nm_count 3\nm_sum 1\n# EOF\n")
                .is_err(),
            "+Inf != count"
        );
        assert!(
            parse("# TYPE m counter\nm_total 1 # bad exemplar 2\n# EOF\n").is_err(),
            "exemplar on non-bucket"
        );
        assert!(
            parse("# TYPE 9bad counter\n# EOF\n").is_err(),
            "bad family name"
        );
    }

    #[test]
    fn missing_exemplars_are_omitted_not_rendered_as_zero() {
        // Regression: a bucket that never saw a traced sample used to be
        // snapshotted with exemplar 0 and rendered as `# {trace_id="0"}`.
        // The absence must be typed (None), the exposition must omit the
        // annotation, and the whole thing must survive a parse + JSON
        // snapshot roundtrip.
        let r = Registry::new();
        let h = r.histogram("t.expo.mixed_us");
        h.record_with_exemplar(100, 77); // traced bucket
        h.record(5000); // untraced bucket: no exemplar at all
        let snap = r.snapshot();
        let buckets = &snap.histograms[0].buckets;
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].exemplar, Some(77));
        assert_eq!(buckets[1].exemplar, None);

        let text = render(&snap);
        let stats = parse(&text).expect("exposition with a bare bucket parses");
        assert_eq!(stats.exemplars, 1, "only the traced bucket is annotated");
        assert!(
            !text.contains("trace_id=\"0\""),
            "an untraced bucket must not fabricate trace id 0: {text}"
        );

        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: Snapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(back, snap, "None exemplars survive the JSON roundtrip");
        assert_eq!(
            parse(&render(&back)),
            Ok(stats),
            "re-render parses identically"
        );
    }

    #[test]
    fn empty_snapshot_is_still_valid_exposition() {
        let r = Registry::new();
        let text = render(&r.snapshot());
        let stats = parse(&text).expect("empty exposition parses");
        assert_eq!(stats.samples, 0);
    }
}
