//! Text rendering of a metrics [`Snapshot`]: per-milestone latency
//! breakdown, a span tree with counts and totals, counters, and histogram
//! quantiles. The milestone section maps span names onto the paper's five
//! "Status of MQA" milestones so `StatusMonitor::render` can show real
//! measured timings.

use crate::metrics::{Snapshot, SpanSnapshot};
use crate::trace::QueryTrace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The paper's five status milestones, each keyed to the span names whose
/// aggregate timing backs it (first present name wins).
pub const MILESTONE_SPANS: [(&str, &[&str]); 5] = [
    ("Data Preprocessing", &["dag.task.data_preprocessing"]),
    ("Vector Representation", &["dag.task.vector_representation"]),
    ("Index Construction", &["dag.task.index_construction"]),
    (
        "Query Execution",
        &[
            "core.turn",
            "retrieval.must.search",
            "retrieval.mr.search",
            "retrieval.je.search",
        ],
    ),
    ("Answer Generation", &["core.turn.generate", "llm.generate"]),
];

/// Formats microseconds with an adaptive unit.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} \u{00b5}s")
    }
}

/// The per-milestone latency lines alone — the fragment
/// `StatusMonitor::detail` consumes. One line per milestone; unmeasured
/// milestones render as `(not measured)`.
pub fn milestone_breakdown(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (label, span_names) in MILESTONE_SPANS {
        let stat = span_names.iter().find_map(|n| snap.span(n));
        match stat {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "{label}: {} total across {} call(s), p50 {}, p99 {}",
                    fmt_us(s.total_us),
                    s.count,
                    fmt_us(s.p50_us),
                    fmt_us(s.p99_us),
                );
            }
            None => {
                let _ = writeln!(out, "{label}: (not measured)");
            }
        }
    }
    out
}

fn render_span_line(out: &mut String, s: &SpanSnapshot, depth: usize) {
    let indent = "  ".repeat(depth + 1);
    let _ = writeln!(
        out,
        "{indent}{} \u{00d7}{}  total {}  p50 {}  max {}",
        s.name,
        s.count,
        fmt_us(s.total_us),
        fmt_us(s.p50_us),
        fmt_us(s.max_us),
    );
}

fn render_span_tree(
    out: &mut String,
    name: &str,
    by_name: &BTreeMap<&str, &SpanSnapshot>,
    children: &BTreeMap<&str, Vec<&str>>,
    depth: usize,
) {
    // Depth cap guards against accidental parent cycles in recorded names.
    if depth > 16 {
        return;
    }
    if let Some(s) = by_name.get(name) {
        render_span_line(out, s, depth);
    }
    if let Some(kids) = children.get(name) {
        for kid in kids {
            render_span_tree(out, kid, by_name, children, depth + 1);
        }
    }
}

/// Renders the slow-query log: one block per retained trace, slowest
/// first, with tail-latency attribution (queue wait vs service vs total),
/// the worker that served it, search work, cache outcome, token counts,
/// and the top stages by duration.
pub fn render_slow_queries(traces: &[QueryTrace]) -> String {
    let mut out = String::new();
    out.push_str("\u{2500}\u{2500} Slow Query Log \u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\n");
    if traces.is_empty() {
        out.push_str("  (no traces retained)\n");
        return out;
    }
    let mut sorted: Vec<&QueryTrace> = traces.iter().collect();
    sorted.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.seq.cmp(&b.seq)));
    for t in sorted {
        let worker = t
            .worker
            .map_or_else(|| "caller thread".to_string(), |w| format!("worker {w}"));
        let cache = match t.cache_hit {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "n/a",
        };
        let _ = writeln!(
            out,
            "trace {} [{}] {} \u{2014} total {} (queue {} + service {}), {}, cache {}",
            t.trace_id,
            t.outcome,
            t.root,
            fmt_us(t.total_us),
            fmt_us(t.queue_wait_us),
            fmt_us(t.service_us),
            worker,
            cache,
        );
        let _ = writeln!(
            out,
            "  work: {} hops, {} evals, {} pages read ({} cached); tokens {}+{}{}{}",
            t.hops,
            t.evals,
            t.pages_read,
            t.pages_cached,
            t.prompt_tokens,
            t.completion_tokens,
            if t.framework.is_empty() {
                String::new()
            } else {
                format!("; framework {}", t.framework)
            },
            if t.serial_fallback {
                "; serial fallback"
            } else {
                ""
            },
        );
        let mut stages: Vec<_> = t.stages.iter().collect();
        stages.sort_by(|a, b| b.dur_us.cmp(&a.dur_us));
        for stage in stages.iter().take(5) {
            let _ = writeln!(out, "    {:<36} {}", stage.name, fmt_us(stage.dur_us));
        }
        if t.stages.len() > 5 {
            let _ = writeln!(out, "    \u{2026} {} more stage(s)", t.stages.len() - 5);
        }
    }
    out
}

/// Renders the full report: milestones, span tree, counters, gauges,
/// histogram quantiles. Stable ordering (registry snapshots are sorted by
/// name) so tests can pin on fragments.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("\u{2500}\u{2500} Observability Report \u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\u{2500}\n");

    out.push_str("Milestones\n");
    for line in milestone_breakdown(snap).lines() {
        let _ = writeln!(out, "  {line}");
    }

    if !snap.spans.is_empty() {
        out.push_str("Spans\n");
        let by_name: BTreeMap<&str, &SpanSnapshot> =
            snap.spans.iter().map(|s| (s.name.as_str(), s)).collect();
        let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut roots: Vec<&str> = Vec::new();
        for s in &snap.spans {
            match s.parent.as_deref().filter(|p| by_name.contains_key(p)) {
                Some(parent) => children.entry(parent).or_default().push(s.name.as_str()),
                None => roots.push(s.name.as_str()),
            }
        }
        for root in roots {
            render_span_tree(&mut out, root, &by_name, &children, 0);
        }
    }

    if !snap.counters.is_empty() {
        out.push_str("Counters\n");
        for c in &snap.counters {
            let _ = writeln!(out, "  {:<44} {}", c.name, c.value);
        }
    }

    if !snap.gauges.is_empty() {
        out.push_str("Gauges\n");
        for g in &snap.gauges {
            let _ = writeln!(out, "  {:<44} {:.3}", g.name, g.value);
        }
    }

    if !snap.histograms.is_empty() {
        out.push_str("Histograms\n");
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<44} n={}  p50={}  p90={}  p99={}  max={}",
                h.name, h.count, h.p50, h.p90, h.p99, h.max,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.record_span("dag.task.data_preprocessing", Some("dag.execute"), 1_500);
        r.record_span("dag.task.vector_representation", Some("dag.execute"), 2_500);
        r.record_span("dag.task.index_construction", Some("dag.execute"), 9_000);
        r.record_span("dag.execute", None, 14_000);
        r.record_span("core.turn", None, 4_200);
        r.record_span("core.turn.generate", Some("core.turn"), 800);
        r.counter("graph.search.evals").add(1234);
        r.histogram("graph.flat.search_us").record(300);
        r
    }

    #[test]
    fn milestone_breakdown_covers_all_five() {
        let text = milestone_breakdown(&sample_registry().snapshot());
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("Data Preprocessing: 1.50 ms"));
        assert!(text.contains("Index Construction: 9.00 ms"));
        assert!(text.contains("Query Execution: 4.20 ms"));
        assert!(text.contains("Answer Generation: 800 \u{00b5}s"));
        assert!(!text.contains("(not measured)"));
    }

    #[test]
    fn unmeasured_milestones_are_flagged() {
        let text = milestone_breakdown(&Registry::new().snapshot());
        assert_eq!(text.lines().count(), 5);
        assert_eq!(text.matches("(not measured)").count(), 5);
    }

    #[test]
    fn render_nests_children_under_parents() {
        let text = render(&sample_registry().snapshot());
        assert!(text.starts_with("\u{2500}\u{2500} Observability Report"));
        let exec_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("dag.execute"))
            .expect("dag.execute line");
        let task_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("dag.task.index_construction"))
            .expect("task line");
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(
            indent(task_line) > indent(exec_line),
            "child indented deeper"
        );
        assert!(text.contains("graph.search.evals"));
        assert!(text.contains("n=1"));
    }

    #[test]
    fn fmt_us_picks_adaptive_units() {
        assert_eq!(fmt_us(12), "12 \u{00b5}s");
        assert_eq!(fmt_us(2_500), "2.50 ms");
        assert_eq!(fmt_us(3_000_000), "3.00 s");
    }
}
