//! Figure 5 in miniature: one two-round dialogue answered by all four
//! systems — MUST, MR, JE, and the generative (DALL·E-style) baseline —
//! under identical query conditions.
//!
//! The full, statistically aggregated version of this comparison is the
//! `fig5_comparative` bench harness; this example walks a single dialogue
//! so the qualitative difference is visible result-by-result.
//!
//! ```bash
//! cargo run --release --example framework_comparison
//! ```

use mqa::encoders::{EncoderRegistry, RawContent};
use mqa::graph::IndexAlgorithm;
use mqa::kb::{DatasetSpec, GroundTruth};
use mqa::llm::GenerativeImageModel;
use mqa::retrieval::{
    EncodedCorpus, EncoderSet, JeFramework, MrFramework, MultiModalQuery, MustFramework,
    RetrievalFramework,
};
use mqa::vector::{ops, Metric};
use mqa::weights::WeightLearner;
use std::sync::Arc;

const K: usize = 3;
const EF: usize = 64;

fn main() {
    // One shared encoded corpus so every framework sees identical vectors.
    let (kb, info) = DatasetSpec::weather()
        .objects(3_000)
        .concepts(80)
        .styles(3)
        .caption_noise(0.25)
        .image_noise(0.2)
        .seed(5)
        .generate_with_info();
    let gt = GroundTruth::build(&kb);
    let registry = EncoderRegistry::new(0);
    let schema = kb.schema().clone();
    let encoders = EncoderSet::default_for(&registry, &schema, 64);
    let corpus = Arc::new(EncodedCorpus::encode(kb, encoders));

    // MUST uses learned weights; the baselines have no weighting hook.
    let labels = corpus
        .concept_labels()
        .expect("generated corpus is labelled");
    let learned = WeightLearner::default().learn(corpus.store(), &labels);
    println!(
        "learned modality weights: {:?} (triplet accuracy {:.2})\n",
        learned.weights.as_slice(),
        learned.triplet_accuracy
    );

    let algo = IndexAlgorithm::mqa_graph();
    let must = MustFramework::build(
        Arc::clone(&corpus),
        learned.weights.clone(),
        Metric::L2,
        &algo,
    );
    let mr = MrFramework::build(Arc::clone(&corpus), Metric::L2, &algo);
    let je = JeFramework::build(Arc::clone(&corpus), Metric::L2, &algo);
    let frameworks: Vec<&dyn RetrievalFramework> = vec![&must, &mr, &je];

    // The scripted dialogue: Figure 5's "foggy clouds" request, mapped to
    // a concept that exists in the generated vocabulary.
    let concept = &info.concepts[3];
    let round1_text = format!(
        "could you assist me in finding images of {}",
        concept.phrase()
    );
    println!("round 1 ▸ \"{round1_text}\"\n");

    let mut selections = Vec::new();
    for fw in &frameworks {
        let out = fw.search(&MultiModalQuery::text(&round1_text), K, EF);
        let marks: Vec<String> = out
            .ids()
            .iter()
            .map(|&id| {
                let rel = if gt.is_relevant(id, concept.id) {
                    "✓"
                } else {
                    "✗"
                };
                format!("{} {}", rel, corpus.kb().get(id).title)
            })
            .collect();
        println!("{:<4} | {}", fw.kind().name(), marks.join(" | "));
        // The user clicks the first relevant image (or the top result).
        let pick = out
            .ids()
            .iter()
            .copied()
            .find(|&id| gt.is_relevant(id, concept.id))
            .unwrap_or(out.ids()[0]);
        selections.push(pick);
    }

    println!(
        "\nround 2 ▸ \"i like this one, could you provide more similar images of {}\"\n",
        concept.phrase()
    );
    let round2_text = format!(
        "i like this one, could you provide more similar images of {}",
        concept.phrase()
    );
    for (fw, &pick) in frameworks.iter().zip(&selections) {
        let style = corpus.kb().get(pick).style.expect("labelled");
        let img = match corpus.kb().get(pick).content(1) {
            Some(RawContent::Image(i)) => i.clone(),
            _ => unreachable!(),
        };
        let out = fw.search(&MultiModalQuery::text_and_image(&round2_text, img), K, EF);
        let marks: Vec<String> = out
            .ids()
            .iter()
            .map(|&id| {
                let rel = if id != pick && gt.is_style_relevant(id, concept.id, style) {
                    "✓"
                } else if gt.is_relevant(id, concept.id) {
                    "~"
                } else {
                    "✗"
                };
                format!("{} {}", rel, corpus.kb().get(id).title)
            })
            .collect();
        println!("{:<4} | {}", fw.kind().name(), marks.join(" | "));
    }

    // The generative baseline: synthesizes images instead of retrieving.
    println!("\nGPT-4/DALL·E-style baseline (generates, does not retrieve):");
    let generator = GenerativeImageModel::new(0, corpus.kb().schema().raw_image_dim(), 0.3);
    let generated = generator.generate_batch(&round1_text, K);
    for (i, g) in generated.iter().enumerate() {
        // Realism gap: distance from the generated descriptor to its
        // nearest corpus image, vs the corpus's own internal spacing.
        let mut nearest = f32::INFINITY;
        for (_, r) in corpus.kb().iter() {
            if let Some(RawContent::Image(img)) = r.content(1) {
                nearest = nearest.min(ops::l2_sq(g.features(), img.features()));
            }
        }
        println!(
            "  gen[{i}]: not a knowledge-base member; nearest corpus image at d²={nearest:.2}"
        );
    }
    println!("(compare: retrieved results are corpus members at d²=0 from themselves)");
}
