//! Custom navigation graphs through the five-stage backend API.
//!
//! The paper: "users can modify existing navigation graphs (e.g., NSG,
//! HNSW, DiskANN, Starling) or initiate custom graphs via the backend
//! API." This example composes a *new* graph from pipeline stages —
//! random initialization, a single low-effort refinement pass with plain
//! nearest selection, no repair — compares it against the stock
//! algorithms, then persists the best index to JSON and restores it
//! without rebuilding.
//!
//! ```bash
//! cargo run --release --example custom_index
//! ```

use mqa::graph::pipeline::{
    EntryStage, GraphPipeline, InitStage, RefineStage, RepairStage, SelectStage,
};
use mqa::graph::{FlatDistance, GraphSearcher, IndexAlgorithm, UnifiedIndex};
use mqa::kb::DatasetSpec;
use mqa::retrieval::{EncodedCorpus, EncoderSet, MultiModalQuery};
use mqa::vector::{Metric, Weights};
use std::sync::Arc;

fn main() {
    // Encode a corpus and take its weighted concatenation — the space every
    // unified navigation graph lives in.
    let kb = DatasetSpec::weather()
        .objects(4_000)
        .concepts(60)
        .seed(3)
        .generate();
    let registry = mqa::encoders::EncoderRegistry::new(0);
    let schema = kb.schema().clone();
    let corpus = EncodedCorpus::encode(kb, EncoderSet::default_for(&registry, &schema, 48));
    let weights = Weights::normalized(&[0.8, 1.2]);
    let store = Arc::new(corpus.store().weighted_store(&weights));

    // A custom pipeline: a kNN graph with one light diversification pass —
    // cheaper to build than the stock algorithms, weaker at routing.
    let custom = GraphPipeline {
        init: InitStage::Knn { k: 12, seed: 7 },
        entry: EntryStage::MedoidPlusRandom { extra: 2, seed: 7 },
        refine: RefineStage { l: 24, passes: 1 },
        select: SelectStage::RobustPrune { alpha: 1.1, r: 12 },
        repair: RepairStage::None,
    };
    let t0 = std::time::Instant::now();
    let nav = custom.run(&store, Metric::L2, "custom-cheap");
    println!(
        "custom graph: built in {:.2}s, {}, connectivity {:.3}",
        t0.elapsed().as_secs_f64(),
        nav.describe(),
        nav.report().connectivity
    );
    for (stage, d) in &nav.report().stage_timings {
        println!("  stage {:<20} {:.1} ms", stage, d.as_secs_f64() * 1e3);
    }

    // Compare recall against stock algorithms at equal ef.
    let queries: Vec<Vec<f32>> = (0..50)
        .map(|i| store.get((i * 37) % store.len() as u32).to_vec())
        .collect();
    println!("\nself-search recall (query = stored vector, k=1, ef=32):");
    let hit_rate = |s: &dyn GraphSearcher| {
        let mut hits = 0;
        for (i, q) in queries.iter().enumerate() {
            let mut d = FlatDistance::new(&store, q, Metric::L2).expect("query dim matches store");
            if s.search(&mut d, 1, 32).results[0].id == ((i as u32 * 37) % store.len() as u32) {
                hits += 1;
            }
        }
        hits as f64 / queries.len() as f64
    };
    println!("  custom-cheap : {:.2}", hit_rate(&nav));
    for algo in [
        IndexAlgorithm::nsg(),
        IndexAlgorithm::vamana(),
        IndexAlgorithm::hnsw(),
    ] {
        let built = algo.build(&store, Metric::L2);
        println!("  {:<13}: {:.2}", algo.name(), hit_rate(built.as_ref()));
    }

    // Persist and restore a full unified index (deployment workflow).
    let index = UnifiedIndex::build(
        corpus.store().clone(),
        weights,
        Metric::L2,
        &IndexAlgorithm::mqa_graph(),
    );
    let json = index.snapshot().to_json().expect("finite index serializes");
    println!(
        "\npersisted unified index: {:.1} MiB of JSON",
        json.len() as f64 / 1048576.0
    );
    let restored = mqa::graph::UnifiedSnapshot::from_json(&json)
        .unwrap()
        .restore();
    let q = corpus
        .encoders()
        .encode_query(&MultiModalQuery::text("golden sunset coast"));
    assert_eq!(
        index.search(&q, None, 5, 48).ids(),
        restored.search(&q, None, 5, 48).ids()
    );
    println!("restored index answers identically — no rebuild needed.");
}
