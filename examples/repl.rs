//! An interactive terminal QA panel — the closest this reproduction gets
//! to the paper's live demonstration. Type multi-modal queries, click
//! results by number, refine, and watch the retrieval statistics.
//!
//! Commands:
//!
//! * plain text — search with that request;
//! * `:pick N` — select result `N` of the previous reply
//!   (its image augments the next query);
//! * `:pick N <text>` — select and refine in one turn;
//! * `:reject N <text>` — "not this one": exclude result `N` for the rest
//!   of the session and re-ask;
//! * `:weights a b` — set a per-modality weight override for the
//!   next turns (`:weights off` clears it);
//! * `:status` — print the status-monitoring panel;
//! * `:config` — print the configuration panel;
//! * `:quit` — exit.
//!
//! ```bash
//! cargo run --release --example repl
//! ```

use mqa::prelude::*;
use std::io::{BufRead, Write};

fn main() {
    println!("building the MQA system (weather corpus, 5k objects)…");
    let kb = DatasetSpec::weather()
        .objects(5_000)
        .concepts(80)
        .styles(3)
        .seed(9)
        .generate();
    let config = Config {
        k: 5,
        ..Config::default()
    };
    let system = MqaSystem::build(config, kb).expect("system builds");
    println!("{}", mqa::core::panels::render_status_panel(&system));
    println!("ready. try: \"foggy clouds over the mountain\" — :quit to exit\n");

    let mut session = system.open_session();
    let mut weights: Option<Vec<f32>> = None;
    let stdin = std::io::stdin();
    loop {
        print!("you ▸ ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let turn = if let Some(rest) = line.strip_prefix(":pick ") {
            let mut parts = rest.splitn(2, ' ');
            let Some(Ok(rank)) = parts.next().map(str::parse::<usize>) else {
                println!("usage: :pick N [refinement text]");
                continue;
            };
            match parts.next() {
                Some(text) => Turn::select_and_text(rank, text),
                None => Turn {
                    select: Some(rank),
                    ..Turn::default()
                },
            }
        } else if let Some(rest) = line.strip_prefix(":reject ") {
            let mut parts = rest.splitn(2, ' ');
            let Some(Ok(rank)) = parts.next().map(str::parse::<usize>) else {
                println!("usage: :reject N <text>");
                continue;
            };
            match parts.next() {
                Some(text) => Turn::reject_and_text(rank, text),
                None => {
                    println!("add a re-request after the rank, e.g. `:reject 0 more clouds`");
                    continue;
                }
            }
        } else if let Some(rest) = line.strip_prefix(":weights ") {
            if rest.trim() == "off" {
                weights = None;
                println!("weight override cleared");
            } else {
                let parsed: Result<Vec<f32>, _> = rest.split_whitespace().map(str::parse).collect();
                match parsed {
                    Ok(w) if !w.is_empty() => {
                        println!("weight override set to {w:?}");
                        weights = Some(w);
                    }
                    _ => println!("usage: :weights <w1> <w2> … | off"),
                }
            }
            continue;
        } else {
            match line {
                ":quit" | ":q" => break,
                ":status" => {
                    println!("{}", mqa::core::panels::render_status_panel(&system));
                    continue;
                }
                ":config" => {
                    println!(
                        "{}",
                        mqa::core::panels::render_config_panel(system.config())
                    );
                    continue;
                }
                text => Turn::text(text),
            }
        };
        let turn = match &weights {
            Some(w) => Turn {
                weights: Some(w.clone()),
                ..turn
            },
            None => turn,
        };
        match session.ask(turn) {
            Ok(reply) => {
                print!("{}", mqa::core::panels::render_qa_exchange(line, &reply));
            }
            Err(e) => println!("mqa ▸ error: {e}"),
        }
    }
    println!("bye");
}
