//! Figures 3 and 4: the three working panels and both interaction
//! scenarios.
//!
//! Scenario (a) — text-only input: "I would like some images of moldy
//! cheese"-style request, iterative refinement by clicking.
//! Scenario (b) — image-assisted input: the user uploads a reference image
//! ("find more coats made of similar material") alongside text.
//!
//! ```bash
//! cargo run --release --example interactive_dialogue
//! ```

use mqa::encoders::RawContent;
use mqa::prelude::*;

fn main() {
    let (kb, info) = DatasetSpec::weather()
        .objects(3_000)
        .concepts(80)
        .styles(3)
        .seed(11)
        .generate_with_info();

    let config = Config {
        k: 4,
        ..Config::default()
    };
    // Panel ①: configuration.
    println!("{}", mqa::core::panels::render_config_panel(&config));
    let system = MqaSystem::build(config, kb).expect("system builds");
    // Panel ②: status monitoring.
    println!("{}", mqa::core::panels::render_status_panel(&system));

    // ── Scenario (a): text-only input with iterative refinement ──
    println!("═══ scenario (a): text-only input ═══\n");
    let concept = &info.concepts[0];
    let mut session = system.open_session();
    let r1 = session
        .ask(Turn::text(format!(
            "i would like some images of {}",
            concept.phrase()
        )))
        .expect("round 1");
    println!(
        "{}",
        mqa::core::panels::render_qa_exchange(
            &format!("i would like some images of {}", concept.phrase()),
            &r1
        )
    );
    let r2 = session
        .ask(Turn::select_and_text(
            0,
            format!(
                "i like this one, could you locate more {} with a similar look",
                concept.phrase()
            ),
        ))
        .expect("round 2");
    println!(
        "{}",
        mqa::core::panels::render_qa_exchange("i like this one, locate more of this type", &r2)
    );

    // ── Scenario (b): image-assisted input ──
    println!("═══ scenario (b): image-assisted input ═══\n");
    // The user's "uploaded" photo: a stored object's image descriptor
    // (in the real system this is the upload widget's preprocessed file).
    let upload_src = system.corpus().kb().get(17);
    let upload = match upload_src.content(1) {
        Some(RawContent::Image(img)) => img.clone(),
        _ => unreachable!("weather objects carry images"),
    };
    let phrase = info.concepts[upload_src.concept.unwrap() as usize].phrase();
    let mut session_b = system.open_session();
    let rb = session_b
        .ask(Turn::text_and_image(
            format!(
                "could you find more {} similar to the one i have provided",
                phrase
            ),
            upload,
        ))
        .expect("image-assisted round");
    println!(
        "{}",
        mqa::core::panels::render_qa_exchange("find more similar to the one i have provided", &rb)
    );
    println!("uploaded reference was object #17: {}", upload_src.title);
}
