//! Retrieval-augmentation vs parametric-only answering.
//!
//! The paper's Data Preprocessing section: "external knowledge ingestion is
//! optional, and disabling it means MQA relies solely on chosen LLMs for
//! responses" — and its introduction motivates retrieval augmentation as
//! the cure for hallucination. This example asks the same questions in
//! both modes and shows the difference: grounded replies cite real,
//! clickable knowledge-base objects; ungrounded replies invent plausible
//! attributes that exist nowhere in the data.
//!
//! ```bash
//! cargo run --release --example grounding
//! ```

use mqa::llm::{LanguageModel, MockChatModel, Prompt};
use mqa::prelude::*;

fn main() {
    let kb = DatasetSpec::fashion()
        .objects(2_000)
        .concepts(60)
        .seed(21)
        .generate();
    let system = MqaSystem::build(
        Config {
            temperature: 0.4,
            ..Config::default()
        },
        kb,
    )
    .expect("system builds");
    let bare_model = MockChatModel::new(0);

    let questions = [
        "a floral cotton top",
        "a checked wool coat",
        "a plain denim jacket",
    ];
    for q in questions {
        println!("════ question: {q:?} ════\n");
        // Mode 1: retrieval-augmented (knowledge base enabled).
        let reply = system.ask_once(Turn::text(q)).expect("grounded answer");
        println!("— with knowledge base —");
        println!("{}\n", reply.message.expect("LLM configured"));

        // Mode 2: knowledge ingestion disabled — LLM-only.
        let bare = bare_model.generate(&Prompt::bare(q), 0.4);
        println!("— without knowledge base (LLM only) —");
        println!("{}\n", bare.text);

        // The grounded reply cites objects that actually exist and can be
        // clicked in the next turn; the bare reply cannot.
        for item in &reply.results {
            assert!(system.corpus().kb().try_get(item.id).is_some());
        }
    }
    println!("every cited result above is a real, selectable knowledge-base object;");
    println!("the LLM-only answers admit they cannot cite any.");
}
