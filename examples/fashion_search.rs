//! Figure 1 of the paper, end to end: the multi-round fashion dialogue.
//!
//! A user asks for a "long-sleeved top for older women", picks one of the
//! returned images, and refines with "add a floral pattern". The example
//! verifies against the corpus ground truth that each round's results
//! track the user's intent.
//!
//! ```bash
//! cargo run --release --example fashion_search
//! ```

use mqa::kb::GroundTruth;
use mqa::prelude::*;

fn main() {
    let (kb, info) = DatasetSpec::fashion()
        .objects(5_000)
        .concepts(120)
        .styles(4)
        .seed(42)
        .generate_with_info();
    let gt = GroundTruth::build(&kb);

    // Find the corpus concept closest to the figure's example so the
    // dialogue targets something that exists ("floral … top").
    let target = info
        .concepts
        .iter()
        .find(|c| {
            c.keywords.contains(&"top".to_string()) && c.keywords.contains(&"floral".to_string())
        })
        .expect("fashion vocabulary contains a floral top concept");
    println!("target concept: {:?} (id {})\n", target.phrase(), target.id);

    let system = MqaSystem::build(Config::default(), kb).expect("system builds");
    println!(
        "learned modality weights: {:?}\n",
        system.weights().as_slice()
    );
    let mut session = system.open_session();

    // Round 1: vague text request (the figure's opening turn).
    let r1 = session
        .ask(Turn::text(format!(
            "a long-sleeved {} for older women",
            target.phrase()
        )))
        .expect("round 1");
    println!(
        "{}",
        mqa::core::panels::render_qa_exchange("long-sleeved top for older women", &r1)
    );
    let hits1 = r1
        .results
        .iter()
        .filter(|i| gt.is_relevant(i.id, target.id))
        .count();
    println!("round-1 concept hits: {hits1}/{}\n", r1.results.len());

    // The user clicks the first on-concept result.
    let pick = r1
        .results
        .iter()
        .position(|i| gt.is_relevant(i.id, target.id))
        .expect("at least one on-concept result to pick");

    // Round 2: refine — "add a floral pattern" (keep the picked image).
    let r2 = session
        .ask(Turn::select_and_text(
            pick,
            format!(
                "i like this one, more {} with this exact look",
                target.phrase()
            ),
        ))
        .expect("round 2");
    println!(
        "{}",
        mqa::core::panels::render_qa_exchange("more with this exact look", &r2)
    );

    let picked_id = r1.results[pick].id;
    let picked_style = system.corpus().kb().get(picked_id).style.expect("labelled");
    let style_hits = r2
        .results
        .iter()
        .filter(|i| i.id != picked_id && gt.is_style_relevant(i.id, target.id, picked_style))
        .count();
    println!(
        "round-2 same-style hits (excluding the pick): {style_hits}/{}",
        r2.results.len()
    );
}
