//! Quickstart: build an MQA system over a generated fashion corpus, ask one
//! multi-modal question, and inspect the five-component pipeline of the
//! paper's Figure 2 through the status panel.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mqa::prelude::*;

fn main() {
    // 1. Data: a synthetic fashion knowledge base (captions + image
    //    descriptors drawn from latent concepts — see DESIGN.md §2).
    let kb = DatasetSpec::fashion()
        .objects(2_000)
        .concepts(60)
        .seed(7)
        .generate();
    println!(
        "knowledge base: {} objects, {} modalities\n",
        kb.len(),
        kb.schema().arity()
    );

    // 2. Build: Data Preprocessing → Vector Representation (with weight
    //    learning) → Index Construction run as a DAG pipeline inside.
    let config = Config::default();
    println!("{}", mqa::core::panels::render_config_panel(&config));
    let system = MqaSystem::build(config, kb).expect("system builds");

    // 3. The status-monitoring panel shows what each component did.
    println!("{}", system.status().render());

    // 4. Ask: one-shot text query through Query Execution + Answer
    //    Generation.
    let reply = system
        .ask_once(Turn::text(
            "a long-sleeved floral cotton top for older women",
        ))
        .expect("query succeeds");
    println!(
        "{}",
        mqa::core::panels::render_qa_exchange(
            "a long-sleeved floral cotton top for older women",
            &reply
        )
    );

    // 5. Refine in a session: click the best result, ask for more like it.
    let mut session = system.open_session();
    session
        .ask(Turn::text("floral cotton top"))
        .expect("round 1");
    let refined = session
        .ask(Turn::select_and_text(
            0,
            "more floral cotton tops like this one",
        ))
        .expect("round 2");
    println!(
        "{}",
        mqa::core::panels::render_qa_exchange("more floral cotton tops like this one", &refined)
    );
}
