//! Deployment-path integration tests: snapshot a built unified index,
//! restore it, and serve a MUST framework from it.

use mqa::encoders::EncoderRegistry;
use mqa::graph::{IndexAlgorithm, UnifiedIndex, UnifiedSnapshot};
use mqa::kb::DatasetSpec;
use mqa::retrieval::{
    EncodedCorpus, EncoderSet, MultiModalQuery, MustFramework, RetrievalFramework,
};
use mqa::vector::{Metric, Weights};
use std::sync::Arc;

fn corpus() -> Arc<EncodedCorpus> {
    let kb = DatasetSpec::weather()
        .objects(400)
        .concepts(20)
        .seed(77)
        .generate();
    let registry = EncoderRegistry::new(3);
    let schema = kb.schema().clone();
    Arc::new(EncodedCorpus::encode(
        kb,
        EncoderSet::default_for(&registry, &schema, 32),
    ))
}

#[test]
fn must_framework_served_from_restored_snapshot() {
    let corpus = corpus();
    let weights = Weights::normalized(&[0.9, 1.1]);
    let index = UnifiedIndex::build(
        corpus.store().clone(),
        weights,
        Metric::L2,
        &IndexAlgorithm::mqa_graph(),
    );
    let json = index.snapshot().to_json().expect("finite index serializes");

    let original = MustFramework::from_index(Arc::clone(&corpus), index).expect("sizes match");
    let restored_index = UnifiedSnapshot::from_json(&json).unwrap().restore();
    let restored =
        MustFramework::from_index(Arc::clone(&corpus), restored_index).expect("sizes match");

    for seed in 0..5u32 {
        let title = corpus.kb().get(seed * 13).title.clone();
        let q = MultiModalQuery::text(title);
        assert_eq!(
            original.search(&q, 5, 48).ids(),
            restored.search(&q, 5, 48).ids(),
            "divergence on query {seed}"
        );
    }
}

#[test]
fn snapshot_json_is_self_describing() {
    let corpus = corpus();
    let index = UnifiedIndex::build(
        corpus.store().clone(),
        Weights::uniform(2),
        Metric::L2,
        &IndexAlgorithm::hnsw(),
    );
    let snap = index.snapshot();
    let json = snap.to_json().expect("finite index serializes");
    assert!(
        json.contains("Hnsw"),
        "algorithm variant visible in snapshot"
    );
    let back = UnifiedSnapshot::from_json(&json).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn snapshot_survives_weight_override_queries() {
    let corpus = corpus();
    let index = UnifiedIndex::build(
        corpus.store().clone(),
        Weights::uniform(2),
        Metric::L2,
        &IndexAlgorithm::nsg(),
    );
    let restored = index.snapshot().restore();
    let q = corpus
        .encoders()
        .encode_query(&MultiModalQuery::text(corpus.kb().get(0).title.clone()));
    let w = Weights::normalized(&[2.0, 0.1]);
    assert_eq!(
        index.search(&q, Some(&w), 5, 32).ids(),
        restored.search(&q, Some(&w), 5, 32).ids()
    );
}
