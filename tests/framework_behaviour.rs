//! Cross-framework behavioural checks: the qualitative claims of the
//! paper's Figure 5, verified statistically at integration scale (the
//! full-scale version is the `fig5_comparative` bench harness).

use mqa::encoders::{EncoderRegistry, RawContent};
use mqa::graph::IndexAlgorithm;
use mqa::kb::{recall_at_k, round2_recall_at_k, DatasetSpec, GroundTruth, WorkloadSpec};
use mqa::retrieval::{
    EncodedCorpus, EncoderSet, FrameworkKind, JeFramework, MrFramework, MultiModalQuery,
    MustFramework, RetrievalFramework,
};
use mqa::vector::{Metric, Weights};
use mqa::weights::WeightLearner;
use std::sync::Arc;

const K: usize = 5;
const EF: usize = 64;

struct Bench {
    corpus: Arc<EncodedCorpus>,
    gt: GroundTruth,
    must: MustFramework,
    mr: MrFramework,
    je: JeFramework,
    info: mqa::kb::datasets::DatasetInfo,
}

/// Corpus with noisy captions and clean images: modality weighting matters.
fn setup() -> Bench {
    let (kb, info) = DatasetSpec::weather()
        .objects(1_200)
        .concepts(30)
        .styles(3)
        .caption_noise(0.35)
        .image_noise(0.15)
        .seed(21)
        .generate_with_info();
    let gt = GroundTruth::build(&kb);
    let registry = EncoderRegistry::new(0);
    let schema = kb.schema().clone();
    let encoders = EncoderSet::default_for(&registry, &schema, 48);
    let corpus = Arc::new(EncodedCorpus::encode(kb, encoders));
    let labels = corpus.concept_labels().unwrap();
    let learned = WeightLearner::default().learn(corpus.store(), &labels);
    let algo = IndexAlgorithm::mqa_graph();
    Bench {
        must: MustFramework::build(Arc::clone(&corpus), learned.weights, Metric::L2, &algo),
        mr: MrFramework::build(Arc::clone(&corpus), Metric::L2, &algo),
        je: JeFramework::build(Arc::clone(&corpus), Metric::L2, &algo),
        corpus,
        gt,
        info,
    }
}

/// Runs the Figure 5 two-round protocol for one framework over a workload;
/// returns (mean round-1 recall, mean round-2 style recall).
fn two_round_protocol(b: &Bench, fw: &dyn RetrievalFramework, queries: usize) -> (f64, f64) {
    let workload = WorkloadSpec::new(queries, 99).generate(&b.info);
    let (mut r1_sum, mut r2_sum) = (0.0, 0.0);
    for case in &workload.cases {
        let out1 = fw.search(&MultiModalQuery::text(&case.round1_text), K, EF);
        r1_sum += recall_at_k(&b.gt, &out1.ids(), case.concept, K);
        // The user clicks the first on-concept result (or the top one).
        let pick = out1
            .ids()
            .iter()
            .copied()
            .find(|&id| b.gt.is_relevant(id, case.concept))
            .unwrap_or(out1.ids()[0]);
        let style = b.corpus.kb().get(pick).style.unwrap();
        let img = match b.corpus.kb().get(pick).content(1) {
            Some(RawContent::Image(i)) => i.clone(),
            _ => unreachable!(),
        };
        let out2 = fw.search(
            &MultiModalQuery::text_and_image(&case.round2_text, img),
            K,
            EF,
        );
        r2_sum += round2_recall_at_k(&b.gt, &out2.ids(), pick, case.concept, style, K);
    }
    (r1_sum / queries as f64, r2_sum / queries as f64)
}

#[test]
fn figure5_shape_must_wins_round2_mr_ties_round1() {
    let b = setup();
    let (must_r1, must_r2) = two_round_protocol(&b, &b.must, 40);
    let (mr_r1, mr_r2) = two_round_protocol(&b, &b.mr, 40);
    let (je_r1, je_r2) = two_round_protocol(&b, &b.je, 40);
    println!("round1: MUST {must_r1:.3} MR {mr_r1:.3} JE {je_r1:.3}");
    println!("round2: MUST {must_r2:.3} MR {mr_r2:.3} JE {je_r2:.3}");

    // MUST delivers optimal results in both rounds.
    assert!(must_r1 >= mr_r1 - 0.05, "MUST r1 {must_r1} < MR r1 {mr_r1}");
    assert!(must_r1 >= je_r1 - 0.05, "MUST r1 {must_r1} < JE r1 {je_r1}");
    assert!(must_r2 >= mr_r2, "MUST r2 {must_r2} < MR r2 {mr_r2}");
    assert!(must_r2 >= je_r2, "MUST r2 {must_r2} < JE r2 {je_r2}");
    // MR matches MUST on text-only input but falls behind on the
    // multi-modal round.
    assert!(
        (mr_r1 - must_r1).abs() < 0.15,
        "MR r1 {mr_r1} vs MUST r1 {must_r1}"
    );
    assert!(
        must_r2 > mr_r2 + 0.05,
        "round-2 gap missing: MUST {must_r2} MR {mr_r2}"
    );
}

#[test]
fn must_graph_search_agrees_with_exact_search() {
    let b = setup();
    let workload = WorkloadSpec::new(15, 5).generate(&b.info);
    let mut agree = 0usize;
    let mut total = 0usize;
    for case in &workload.cases {
        let q = MultiModalQuery::text(&case.round1_text);
        let approx = b.must.search(&q, K, 128);
        let qv = b.corpus.encoders().encode_query(&q);
        let exact = b.must.index().search_exact(&qv, None, K);
        total += K;
        agree += approx
            .ids()
            .iter()
            .filter(|id| exact.ids().contains(id))
            .count();
    }
    let recall = agree as f64 / total as f64;
    assert!(recall >= 0.9, "graph-vs-exact recall {recall}");
}

#[test]
fn must_reports_incremental_scanning_savings() {
    let b = setup();
    let out = b
        .must
        .search(&MultiModalQuery::text("heavy storm mountain"), K, EF);
    let scan = out.scan.expect("MUST reports scan stats");
    assert!(scan.terms > 0);
    assert!(
        scan.terms_skipped > 0,
        "expected early-abandon savings, got {scan:?}"
    );
}

#[test]
fn framework_kinds_are_distinct() {
    let b = setup();
    assert_eq!(b.must.kind(), FrameworkKind::Must);
    assert_eq!(b.mr.kind(), FrameworkKind::Mr);
    assert_eq!(b.je.kind(), FrameworkKind::Je);
    assert_ne!(b.must.describe(), b.mr.describe());
}

#[test]
fn learned_weights_beat_uniform_on_round1_recall() {
    let b = setup();
    let uniform = MustFramework::build(
        Arc::clone(&b.corpus),
        Weights::uniform(2),
        Metric::L2,
        &IndexAlgorithm::mqa_graph(),
    );
    let (learned_r1, _) = two_round_protocol(&b, &b.must, 40);
    let (uniform_r1, _) = two_round_protocol(&b, &uniform, 40);
    println!("learned {learned_r1:.3} uniform {uniform_r1:.3}");
    assert!(
        learned_r1 >= uniform_r1 - 0.02,
        "learned {learned_r1} materially worse than uniform {uniform_r1}"
    );
}
