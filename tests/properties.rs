//! Randomized property tests over the core invariants of the vector, graph,
//! and weighting substrates. Each property draws a few hundred seeded cases
//! from the in-tree [`mqa_rng`] PRNG, so runs are deterministic and the
//! suite needs no external dependencies.

use mqa::graph::{Adjacency, PageLayout};
use mqa::vector::{ops, Candidate, FusedScanner, Metric, MultiVector, Schema, TopK, Weights};
use mqa_rng::StdRng;

const CASES: usize = 200;

fn rand_vec(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(-10.0f32..10.0)).collect()
}

// ── metric axioms ────────────────────────────────────────────────────────

#[test]
fn l2_symmetry() {
    let mut rng = StdRng::seed_from_u64(0xA001);
    for _ in 0..CASES {
        let (a, b) = (rand_vec(&mut rng, 16), rand_vec(&mut rng, 16));
        let d1 = Metric::L2.distance(&a, &b);
        let d2 = Metric::L2.distance(&b, &a);
        assert!((d1 - d2).abs() <= 1e-3 * (1.0 + d1.abs()));
    }
}

#[test]
fn l2_identity_and_nonnegativity() {
    let mut rng = StdRng::seed_from_u64(0xA002);
    for _ in 0..CASES {
        let a = rand_vec(&mut rng, 16);
        assert_eq!(Metric::L2.distance(&a, &a), 0.0);
        assert!(Metric::L2.distance(&a, &[0.0; 16]) >= 0.0);
    }
}

#[test]
fn l2_triangle_inequality_on_sqrt() {
    let mut rng = StdRng::seed_from_u64(0xA003);
    for _ in 0..CASES {
        let a = rand_vec(&mut rng, 8);
        let b = rand_vec(&mut rng, 8);
        let c = rand_vec(&mut rng, 8);
        // L2 is squared; the triangle inequality holds for its square root.
        let ab = Metric::L2.distance(&a, &b).sqrt();
        let bc = Metric::L2.distance(&b, &c).sqrt();
        let ac = Metric::L2.distance(&a, &c).sqrt();
        assert!(ac <= ab + bc + 1e-3);
    }
}

#[test]
fn cosine_bounded() {
    let mut rng = StdRng::seed_from_u64(0xA004);
    for _ in 0..CASES {
        let (a, b) = (rand_vec(&mut rng, 8), rand_vec(&mut rng, 8));
        let d = Metric::Cosine.distance(&a, &b);
        assert!((-1e-5..=2.0 + 1e-5).contains(&d), "cosine distance {d}");
    }
}

// ── top-k collection ─────────────────────────────────────────────────────

#[test]
fn topk_equals_sorted_prefix() {
    let mut rng = StdRng::seed_from_u64(0xA005);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..60);
        let dists: Vec<f32> = (0..len).map(|_| rng.gen_range(0.0f32..100.0)).collect();
        let k = rng.gen_range(1usize..20);
        let mut top = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            top.offer(Candidate::new(i as u32, d));
        }
        let got: Vec<u32> = top.into_sorted().into_iter().map(|c| c.id).collect();
        let mut expect: Vec<Candidate> = dists
            .iter()
            .enumerate()
            .map(|(i, &d)| Candidate::new(i as u32, d))
            .collect();
        expect.sort_unstable();
        expect.truncate(k);
        let expect_ids: Vec<u32> = expect.into_iter().map(|c| c.id).collect();
        assert_eq!(got, expect_ids);
    }
}

// ── weights ──────────────────────────────────────────────────────────────

#[test]
fn weights_normalized_sum_equals_arity() {
    let mut rng = StdRng::seed_from_u64(0xA006);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..6);
        let raw: Vec<f32> = (0..len).map(|_| rng.gen_range(0.01f32..10.0)).collect();
        let w = Weights::normalized(&raw);
        let sum: f32 = w.as_slice().iter().sum();
        assert!((sum - raw.len() as f32).abs() < 1e-3);
        assert!(w.as_slice().iter().all(|&x| x >= 0.0));
    }
}

#[test]
fn weighted_concat_identity() {
    let mut rng = StdRng::seed_from_u64(0xA007);
    for _ in 0..CASES {
        // Fused weighted L2 == plain L2 on sqrt(w)-scaled concatenation.
        let schema = Schema::text_image(6, 10);
        let a = MultiVector::complete(&schema, vec![rand_vec(&mut rng, 6), rand_vec(&mut rng, 10)]);
        let b = MultiVector::complete(&schema, vec![rand_vec(&mut rng, 6), rand_vec(&mut rng, 10)]);
        let wt = rng.gen_range(0.1f32..4.0);
        let wi = rng.gen_range(0.1f32..4.0);
        let w = Weights::normalized(&[wt, wi]);
        let fused = a.fused_distance(&b, &w, Metric::L2);
        let mut fa = a.concat(&schema);
        let mut fb = b.concat(&schema);
        w.scale_concat(&schema, &mut fa);
        w.scale_concat(&schema, &mut fb);
        let flat = Metric::L2.distance(&fa, &fb);
        assert!(
            (fused - flat).abs() <= 1e-2 * (1.0 + fused.abs()),
            "fused {fused} flat {flat}"
        );
    }
}

// ── incremental scanning soundness ───────────────────────────────────────

#[test]
fn scan_decision_matches_exact_comparison() {
    let mut rng = StdRng::seed_from_u64(0xA008);
    for _ in 0..CASES {
        let schema = Schema::text_image(8, 8);
        let q = MultiVector::complete(&schema, vec![rand_vec(&mut rng, 8), rand_vec(&mut rng, 8)]);
        let o = MultiVector::complete(&schema, vec![rand_vec(&mut rng, 8), rand_vec(&mut rng, 8)]);
        let bound = rng.gen_range(0.0f32..500.0);
        let wt = rng.gen_range(0.1f32..3.0);
        let w = Weights::normalized(&[wt, 2.0 - wt.min(1.9)]);
        let exact = q.fused_distance(&o, &w, Metric::L2);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        match scanner.distance(&o.concat(&schema), bound) {
            Some(d) => assert!((d - exact).abs() <= 1e-2 * (1.0 + exact)),
            None => assert!(
                exact >= bound - 1e-2 * (1.0 + bound),
                "abandoned but exact {exact} < bound {bound}"
            ),
        }
    }
}

// ── vector ops ───────────────────────────────────────────────────────────

#[test]
fn normalize_gives_unit_norm_or_zero() {
    let mut rng = StdRng::seed_from_u64(0xA009);
    for _ in 0..CASES {
        let v = rand_vec(&mut rng, 12);
        let n = ops::normalized(&v);
        let norm = ops::norm(&n);
        assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-3);
    }
}

#[test]
fn multivector_concat_split_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xA00A);
    for _ in 0..CASES {
        let schema = Schema::text_image(5, 7);
        let mv = MultiVector::complete(&schema, vec![rand_vec(&mut rng, 5), rand_vec(&mut rng, 7)]);
        let back = MultiVector::from_concat(&schema, &mv.concat(&schema));
        assert_eq!(mv, back);
    }
}

// ── graph invariants ─────────────────────────────────────────────────────

#[test]
fn adjacency_edges_are_deduplicated() {
    let mut rng = StdRng::seed_from_u64(0xA00B);
    for _ in 0..CASES {
        let mut g = Adjacency::new(20);
        for _ in 0..rng.gen_range(0usize..100) {
            let a = rng.gen_range(0u32..20);
            let b = rng.gen_range(0u32..20);
            if a != b {
                g.add_edge(a, b);
            }
        }
        for v in 0..20u32 {
            let nb = g.neighbors(v);
            let mut dedup = nb.to_vec();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(nb.len(), dedup.len(), "duplicates at {v}");
            assert!(!nb.contains(&v), "self loop at {v}");
        }
    }
}

#[test]
fn page_layout_partitions_vertices() {
    let mut rng = StdRng::seed_from_u64(0xA00C);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..200);
        let per_page = rng.gen_range(1usize..10);
        let mut g = Adjacency::new(n);
        for v in 1..n as u32 {
            g.add_edge(v - 1, v);
        }
        for strategy in [
            mqa::graph::starling::LayoutStrategy::InsertionOrder,
            mqa::graph::starling::LayoutStrategy::BfsCluster,
        ] {
            let layout = PageLayout::build(&g, per_page, strategy);
            let mut counts = vec![0usize; layout.pages()];
            for v in 0..n as u32 {
                counts[layout.page(v) as usize] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), n);
            assert!(counts.iter().all(|&c| c <= per_page));
        }
    }
}

// ── neighbour selection invariants ───────────────────────────────────────

#[test]
fn robust_prune_output_well_formed() {
    use mqa::graph::prune::robust_prune;
    use mqa::vector::VectorStore;
    let mut rng = StdRng::seed_from_u64(0xA00D);
    for _ in 0..64 {
        let n = rng.gen_range(3usize..40);
        let alpha = rng.gen_range(1.0f32..2.0);
        let r = rng.gen_range(1usize..10);
        let mut store = VectorStore::new(4);
        for _ in 0..n {
            store.push(&rand_vec(&mut rng, 4));
        }
        let v = 0u32;
        let cands: Vec<Candidate> = (1..n as u32)
            .map(|u| Candidate::new(u, Metric::L2.distance(store.get(v), store.get(u))))
            .collect();
        let nearest = cands.iter().min().map(|c| c.id);
        let selected = robust_prune(&store, Metric::L2, v, cands, alpha, r);
        assert!(selected.len() <= r);
        assert!(!selected.contains(&v), "self loop");
        let mut dedup = selected.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), selected.len(), "duplicate selection");
        // The nearest candidate always survives pruning.
        if let (Some(first), Some(nearest)) = (selected.first(), nearest) {
            assert_eq!(*first, nearest, "nearest candidate pruned");
        }
    }
}

// ── beam search structure ────────────────────────────────────────────────

#[test]
fn beam_search_output_well_formed() {
    use mqa::graph::{beam_search, FlatDistance};
    use mqa::vector::VectorStore;
    let mut rng = StdRng::seed_from_u64(0xA00E);
    for case in 0..64 {
        let n = rng.gen_range(2usize..50);
        let query = rand_vec(&mut rng, 3);
        let k = rng.gen_range(1usize..8);
        // Force the ef >= n branch on a fraction of cases.
        let ef = if case % 4 == 0 {
            n + rng.gen_range(0usize..8)
        } else {
            rng.gen_range(1usize..16)
        };
        let mut store = VectorStore::new(3);
        for _ in 0..n {
            store.push(&rand_vec(&mut rng, 3));
        }
        // Ring graph: always connected.
        let mut g = Adjacency::new(n);
        for v in 0..n as u32 {
            g.add_edge(v, ((v as usize + 1) % n) as u32);
            g.add_edge(v, ((v as usize + n - 1) % n) as u32);
        }
        let mut dist = FlatDistance::new(&store, &query, Metric::L2).expect("dims match");
        let out = beam_search(&g, &[0], &mut dist, k, ef);
        assert!(out.results.len() <= k);
        assert!(!out.results.is_empty());
        // sorted ascending, unique ids
        for w in out.results.windows(2) {
            assert!(w[0].dist <= w[1].dist);
            assert!(w[0].id != w[1].id);
        }
        // every reported distance is the true distance
        for c in &out.results {
            let true_d = Metric::L2.distance(&query, store.get(c.id));
            assert!((c.dist - true_d).abs() < 1e-3);
        }
        // with ef >= n on a connected graph the true nearest is found
        if ef >= n {
            let best = (0..n as u32).min_by(|&a, &b| {
                Metric::L2
                    .distance(&query, store.get(a))
                    .total_cmp(&Metric::L2.distance(&query, store.get(b)))
            });
            assert_eq!(Some(out.results[0].id), best);
        }
    }
}

// ── seeded-randomized structural properties ──────────────────────────────

#[test]
fn repaired_graphs_reach_every_vertex() {
    use mqa::vector::VectorStore;
    use std::sync::Arc;
    let mut rng = StdRng::seed_from_u64(31);
    for trial in 0..3 {
        let n = 150 + trial * 80;
        let mut store = VectorStore::new(6);
        for _ in 0..n {
            let v: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            store.push(&v);
        }
        let store = Arc::new(store);
        let nav = mqa::graph::vamana::build(&store, Metric::L2, 10, 24, 1.2, trial as u64);
        assert_eq!(
            nav.graph().reachable_count(nav.entries()[0]),
            n,
            "trial {trial}: unreachable vertices remain"
        );
    }
}
