//! Property-based tests (proptest) over the core invariants of the vector,
//! graph, and weighting substrates.

use mqa::graph::{Adjacency, PageLayout};
use mqa::vector::{
    ops, Candidate, FusedScanner, Metric, MultiVector, Schema, TopK, Weights,
};
use proptest::prelude::*;

fn vec_strategy(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    // ── metric axioms ────────────────────────────────────────────────

    #[test]
    fn l2_symmetry(a in vec_strategy(16), b in vec_strategy(16)) {
        let d1 = Metric::L2.distance(&a, &b);
        let d2 = Metric::L2.distance(&b, &a);
        prop_assert!((d1 - d2).abs() <= 1e-3 * (1.0 + d1.abs()));
    }

    #[test]
    fn l2_identity_and_nonnegativity(a in vec_strategy(16)) {
        prop_assert_eq!(Metric::L2.distance(&a, &a), 0.0);
        prop_assert!(Metric::L2.distance(&a, &[0.0; 16]) >= 0.0);
    }

    #[test]
    fn l2_triangle_inequality_on_sqrt(
        a in vec_strategy(8),
        b in vec_strategy(8),
        c in vec_strategy(8),
    ) {
        // L2 is squared; the triangle inequality holds for its square root.
        let ab = Metric::L2.distance(&a, &b).sqrt();
        let bc = Metric::L2.distance(&b, &c).sqrt();
        let ac = Metric::L2.distance(&a, &c).sqrt();
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn cosine_bounded(a in vec_strategy(8), b in vec_strategy(8)) {
        let d = Metric::Cosine.distance(&a, &b);
        prop_assert!((-1e-5..=2.0 + 1e-5).contains(&d), "cosine distance {d}");
    }

    // ── top-k collection ─────────────────────────────────────────────

    #[test]
    fn topk_equals_sorted_prefix(
        dists in proptest::collection::vec(0.0f32..100.0, 1..60),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            top.offer(Candidate::new(i as u32, d));
        }
        let got: Vec<u32> = top.into_sorted().into_iter().map(|c| c.id).collect();
        let mut expect: Vec<Candidate> = dists
            .iter()
            .enumerate()
            .map(|(i, &d)| Candidate::new(i as u32, d))
            .collect();
        expect.sort_unstable();
        expect.truncate(k);
        let expect_ids: Vec<u32> = expect.into_iter().map(|c| c.id).collect();
        prop_assert_eq!(got, expect_ids);
    }

    // ── weights ──────────────────────────────────────────────────────

    #[test]
    fn weights_normalized_sum_equals_arity(
        raw in proptest::collection::vec(0.01f32..10.0, 1..6),
    ) {
        let w = Weights::normalized(&raw);
        let sum: f32 = w.as_slice().iter().sum();
        prop_assert!((sum - raw.len() as f32).abs() < 1e-3);
        prop_assert!(w.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn weighted_concat_identity(
        t in vec_strategy(6),
        i in vec_strategy(10),
        t2 in vec_strategy(6),
        i2 in vec_strategy(10),
        wt in 0.1f32..4.0,
        wi in 0.1f32..4.0,
    ) {
        // Fused weighted L2 == plain L2 on sqrt(w)-scaled concatenation.
        let schema = Schema::text_image(6, 10);
        let a = MultiVector::complete(&schema, vec![t, i]);
        let b = MultiVector::complete(&schema, vec![t2, i2]);
        let w = Weights::normalized(&[wt, wi]);
        let fused = a.fused_distance(&b, &w, Metric::L2);
        let mut fa = a.concat(&schema);
        let mut fb = b.concat(&schema);
        w.scale_concat(&schema, &mut fa);
        w.scale_concat(&schema, &mut fb);
        let flat = Metric::L2.distance(&fa, &fb);
        prop_assert!((fused - flat).abs() <= 1e-2 * (1.0 + fused.abs()),
            "fused {fused} flat {flat}");
    }

    // ── incremental scanning soundness ───────────────────────────────

    #[test]
    fn scan_decision_matches_exact_comparison(
        q_t in vec_strategy(8),
        q_i in vec_strategy(8),
        o_t in vec_strategy(8),
        o_i in vec_strategy(8),
        bound in 0.0f32..500.0,
        wt in 0.1f32..3.0,
    ) {
        let schema = Schema::text_image(8, 8);
        let q = MultiVector::complete(&schema, vec![q_t, q_i]);
        let o = MultiVector::complete(&schema, vec![o_t, o_i]);
        let w = Weights::normalized(&[wt, 2.0 - wt.min(1.9)]);
        let exact = q.fused_distance(&o, &w, Metric::L2);
        let mut scanner = FusedScanner::new(&schema, &q, &w, Metric::L2);
        match scanner.distance(&o.concat(&schema), bound) {
            Some(d) => prop_assert!((d - exact).abs() <= 1e-2 * (1.0 + exact)),
            None => prop_assert!(exact >= bound - 1e-2 * (1.0 + bound),
                "abandoned but exact {exact} < bound {bound}"),
        }
    }

    // ── vector ops ───────────────────────────────────────────────────

    #[test]
    fn normalize_gives_unit_norm_or_zero(v in vec_strategy(12)) {
        let n = ops::normalized(&v);
        let norm = ops::norm(&n);
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-3);
    }

    #[test]
    fn multivector_concat_split_roundtrip(
        t in vec_strategy(5),
        i in vec_strategy(7),
    ) {
        let schema = Schema::text_image(5, 7);
        let mv = MultiVector::complete(&schema, vec![t, i]);
        let back = MultiVector::from_concat(&schema, &mv.concat(&schema));
        prop_assert_eq!(mv, back);
    }

    // ── graph invariants ─────────────────────────────────────────────

    #[test]
    fn adjacency_edges_are_deduplicated(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..100),
    ) {
        let mut g = Adjacency::new(20);
        for (a, b) in edges {
            if a != b {
                g.add_edge(a, b);
            }
        }
        for v in 0..20u32 {
            let nb = g.neighbors(v);
            let mut dedup = nb.to_vec();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(nb.len(), dedup.len(), "duplicates at {}", v);
            prop_assert!(!nb.contains(&v), "self loop at {}", v);
        }
    }

    #[test]
    fn page_layout_partitions_vertices(
        n in 1usize..200,
        per_page in 1usize..10,
    ) {
        let mut g = Adjacency::new(n);
        for v in 1..n as u32 {
            g.add_edge(v - 1, v);
        }
        for strategy in [
            mqa::graph::starling::LayoutStrategy::InsertionOrder,
            mqa::graph::starling::LayoutStrategy::BfsCluster,
        ] {
            let layout = PageLayout::build(&g, per_page, strategy);
            let mut counts = vec![0usize; layout.pages()];
            for v in 0..n as u32 {
                counts[layout.page(v) as usize] += 1;
            }
            prop_assert_eq!(counts.iter().sum::<usize>(), n);
            prop_assert!(counts.iter().all(|&c| c <= per_page));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ── neighbour selection invariants ───────────────────────────────

    #[test]
    fn robust_prune_output_well_formed(
        points in proptest::collection::vec(vec_strategy(4), 3..40),
        alpha in 1.0f32..2.0,
        r in 1usize..10,
    ) {
        use mqa::graph::prune::robust_prune;
        use mqa::vector::VectorStore;
        let mut store = VectorStore::new(4);
        for p in &points {
            store.push(p);
        }
        let v = 0u32;
        let cands: Vec<Candidate> = (1..points.len() as u32)
            .map(|u| Candidate::new(u, Metric::L2.distance(store.get(v), store.get(u))))
            .collect();
        let nearest = cands.iter().min().map(|c| c.id);
        let selected = robust_prune(&store, Metric::L2, v, cands, alpha, r);
        prop_assert!(selected.len() <= r);
        prop_assert!(!selected.contains(&v), "self loop");
        let mut dedup = selected.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), selected.len(), "duplicate selection");
        // The nearest candidate always survives pruning.
        if let (Some(first), Some(nearest)) = (selected.first(), nearest) {
            prop_assert_eq!(*first, nearest, "nearest candidate pruned");
        }
    }

    // ── beam search structure ────────────────────────────────────────

    #[test]
    fn beam_search_output_well_formed(
        points in proptest::collection::vec(vec_strategy(3), 2..50),
        query in vec_strategy(3),
        k in 1usize..8,
        ef in 1usize..16,
    ) {
        use mqa::graph::{beam_search, Adjacency, FlatDistance};
        use mqa::vector::VectorStore;
        let n = points.len();
        let mut store = VectorStore::new(3);
        for p in &points {
            store.push(p);
        }
        // Ring graph: always connected.
        let mut g = Adjacency::new(n);
        for v in 0..n as u32 {
            g.add_edge(v, ((v as usize + 1) % n) as u32);
            g.add_edge(v, ((v as usize + n - 1) % n) as u32);
        }
        let mut dist = FlatDistance::new(&store, &query, Metric::L2);
        let out = beam_search(&g, &[0], &mut dist, k, ef);
        prop_assert!(out.results.len() <= k);
        prop_assert!(!out.results.is_empty());
        // sorted ascending, unique ids
        for w in out.results.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
            prop_assert!(w[0].id != w[1].id);
        }
        // every reported distance is the true distance
        for c in &out.results {
            let true_d = Metric::L2.distance(&query, store.get(c.id));
            prop_assert!((c.dist - true_d).abs() < 1e-3);
        }
        // with ef >= n on a connected graph the true nearest is found
        if ef >= n {
            let best = (0..n as u32)
                .min_by(|&a, &b| {
                    Metric::L2
                        .distance(&query, store.get(a))
                        .total_cmp(&Metric::L2.distance(&query, store.get(b)))
                })
                .unwrap();
            prop_assert_eq!(out.results[0].id, best);
        }
    }
}

// ── seeded-randomized (non-proptest) structural properties ─────────────

#[test]
fn repaired_graphs_reach_every_vertex() {
    use mqa::vector::VectorStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    let mut rng = StdRng::seed_from_u64(31);
    for trial in 0..3 {
        let n = 150 + trial * 80;
        let mut store = VectorStore::new(6);
        for _ in 0..n {
            let v: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
            store.push(&v);
        }
        let store = Arc::new(store);
        let nav = mqa::graph::vamana::build(&store, Metric::L2, 10, 24, 1.2, trial as u64);
        assert_eq!(
            nav.graph().reachable_count(nav.entries()[0]),
            n,
            "trial {trial}: unreachable vertices remain"
        );
    }
}
