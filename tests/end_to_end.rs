//! End-to-end integration: build the full system on every demonstration
//! corpus, run the paper's interaction scenarios, and verify retrieval
//! quality against the generated ground truth.

use mqa::kb::GroundTruth;
use mqa::prelude::*;

fn phrase_of(kb: &mqa::kb::KnowledgeBase, id: ObjectId) -> String {
    kb.get(id)
        .title
        .rsplit_once(" #")
        .map(|(p, _)| p.to_string())
        .unwrap()
}

#[test]
fn builds_and_answers_on_all_three_corpora() {
    let specs = [
        DatasetSpec::fashion().objects(300).concepts(20).seed(1),
        DatasetSpec::weather().objects(300).concepts(20).seed(4),
        DatasetSpec::movies().objects(300).concepts(20).seed(3),
    ];
    for spec in specs {
        let kb = spec.generate();
        let name = kb.name().to_string();
        let gt = GroundTruth::build(&kb);
        let system = MqaSystem::build(Config::default(), kb).expect("system builds");
        let member = gt.members(0)[0];
        let phrase = phrase_of(system.corpus().kb(), member);
        let reply = system.ask_once(Turn::text(phrase)).expect("query succeeds");
        let hits = reply
            .results
            .iter()
            .filter(|i| gt.is_relevant(i.id, 0))
            .count();
        assert!(
            hits >= 3,
            "corpus `{name}`: only {hits}/5 on-concept results"
        );
        assert!(reply.message.is_some(), "corpus `{name}`: no LLM reply");
    }
}

#[test]
fn two_round_refinement_improves_style_precision() {
    let (kb, _) = DatasetSpec::weather()
        .objects(600)
        .concepts(20)
        .styles(3)
        .seed(7)
        .generate_with_info();
    let gt = GroundTruth::build(&kb);
    let system = MqaSystem::build(
        Config {
            k: 6,
            ..Config::default()
        },
        kb,
    )
    .expect("builds");
    let mut session = system.open_session();

    let member = gt.members(4)[0];
    let phrase = phrase_of(system.corpus().kb(), member);
    let r1 = session
        .ask(Turn::text(format!("show me {phrase}")))
        .unwrap();
    let pick = r1
        .results
        .iter()
        .position(|i| gt.is_relevant(i.id, 4))
        .expect("round 1 finds the concept");
    let picked_id = r1.results[pick].id;
    let style = system.corpus().kb().get(picked_id).style.unwrap();

    let r2 = session
        .ask(Turn::select_and_text(
            pick,
            format!("more {phrase} like this one"),
        ))
        .unwrap();
    let style_hits = r2
        .results
        .iter()
        .filter(|i| i.id != picked_id && gt.is_style_relevant(i.id, 4, style))
        .count();
    assert!(
        style_hits >= 2,
        "round 2 found only {style_hits} same-style results"
    );
}

#[test]
fn all_frameworks_build_through_the_coordinator() {
    let kb = DatasetSpec::weather()
        .objects(200)
        .concepts(10)
        .seed(9)
        .generate();
    for fw in [FrameworkKind::Must, FrameworkKind::Mr, FrameworkKind::Je] {
        let cfg = Config {
            framework: fw,
            ..Config::default()
        };
        let system = MqaSystem::build(cfg, kb.clone()).expect("builds");
        let phrase = phrase_of(system.corpus().kb(), 0);
        let reply = system.ask_once(Turn::text(phrase)).expect("answers");
        assert_eq!(reply.results.len(), 5, "{fw:?}");
    }
}

#[test]
fn all_index_algorithms_work_end_to_end() {
    use mqa::graph::IndexAlgorithm;
    let kb = DatasetSpec::weather()
        .objects(200)
        .concepts(10)
        .seed(10)
        .generate();
    let gt = GroundTruth::build(&kb);
    for index in [
        IndexAlgorithm::Flat,
        IndexAlgorithm::ivf(),
        IndexAlgorithm::hnsw(),
        IndexAlgorithm::nsg(),
        IndexAlgorithm::vamana(),
        IndexAlgorithm::mqa_graph(),
    ] {
        let name = index.name();
        let cfg = Config {
            index,
            ..Config::default()
        };
        let system = MqaSystem::build(cfg, kb.clone()).expect("builds");
        let member = gt.members(3)[0];
        let phrase = phrase_of(system.corpus().kb(), member);
        let reply = system.ask_once(Turn::text(phrase)).expect("answers");
        let hits = reply
            .results
            .iter()
            .filter(|i| gt.is_relevant(i.id, 3))
            .count();
        assert!(hits >= 3, "index `{name}`: {hits}/5 on-concept");
    }
}

#[test]
fn config_json_round_trip_rebuilds_identically() {
    let kb = DatasetSpec::weather()
        .objects(150)
        .concepts(10)
        .seed(11)
        .generate();
    let cfg = Config {
        k: 4,
        ef: 32,
        ..Config::default()
    };
    let json = cfg.to_json();
    let cfg2 = Config::from_json(&json).unwrap();
    let sys1 = MqaSystem::build(cfg, kb.clone()).unwrap();
    let sys2 = MqaSystem::build(cfg2, kb).unwrap();
    let phrase = phrase_of(sys1.corpus().kb(), 0);
    let r1 = sys1.ask_once(Turn::text(phrase.clone())).unwrap();
    let r2 = sys2.ask_once(Turn::text(phrase)).unwrap();
    let ids1: Vec<_> = r1.results.iter().map(|i| i.id).collect();
    let ids2: Vec<_> = r2.results.iter().map(|i| i.id).collect();
    assert_eq!(
        ids1, ids2,
        "identical configs must reproduce identical results"
    );
}

#[test]
fn status_panel_reflects_every_component() {
    use mqa::core::Milestone;
    let kb = DatasetSpec::movies()
        .objects(120)
        .concepts(8)
        .seed(12)
        .generate();
    let system = MqaSystem::build(Config::default(), kb).unwrap();
    for m in Milestone::ALL {
        assert!(system.status().is_done(m), "{m:?} pending after build");
    }
    let panel = system.status().render();
    assert!(
        panel.contains("3 modalities"),
        "movies is three-modal: {panel}"
    );
    assert!(
        panel.contains("learned weights"),
        "weight learning note missing: {panel}"
    );
}

#[test]
fn knowledge_base_json_export_import_preserves_answers() {
    let kb = DatasetSpec::weather()
        .objects(100)
        .concepts(8)
        .seed(13)
        .generate();
    let json = kb.to_json();
    let kb2 = mqa::kb::KnowledgeBase::from_json(&json).unwrap();
    assert_eq!(kb, kb2);
    let sys = MqaSystem::build(Config::default(), kb2).unwrap();
    let phrase = phrase_of(sys.corpus().kb(), 5);
    assert!(!sys.ask_once(Turn::text(phrase)).unwrap().results.is_empty());
}

#[test]
fn voice_turn_behaves_like_text() {
    let kb = DatasetSpec::weather()
        .objects(100)
        .concepts(8)
        .seed(16)
        .generate();
    let system = MqaSystem::build(Config::default(), kb).unwrap();
    let phrase = phrase_of(system.corpus().kb(), 3);
    let typed = system.ask_once(Turn::text(phrase.clone())).unwrap();
    let spoken = system.ask_once(Turn::voice(phrase)).unwrap();
    let ids_t: Vec<_> = typed.results.iter().map(|r| r.id).collect();
    let ids_s: Vec<_> = spoken.results.iter().map(|r| r.id).collect();
    assert_eq!(ids_t, ids_s);
}

#[test]
fn llm_disabled_still_retrieves() {
    let kb = DatasetSpec::fashion()
        .objects(100)
        .concepts(8)
        .seed(14)
        .generate();
    let cfg = Config {
        llm: mqa::llm::LlmChoice::None,
        ..Config::default()
    };
    let system = MqaSystem::build(cfg, kb).unwrap();
    let phrase = phrase_of(system.corpus().kb(), 0);
    let reply = system.ask_once(Turn::text(phrase)).unwrap();
    assert!(reply.message.is_none());
    assert_eq!(reply.results.len(), 5);
}

#[test]
fn single_modality_text_base_works_end_to_end() {
    use mqa::encoders::RawContent;
    use mqa::kb::{ContentSchema, FieldSpec, KnowledgeBase, ObjectRecord};
    use mqa::vector::ModalityKind;
    // A user-ingested, unlabelled, text-only knowledge base: exercises
    // arity-1 schemas, uniform-weight fallback, and selection without an
    // image to graft.
    let mut kb = KnowledgeBase::new(
        "notes",
        ContentSchema::new(
            vec![FieldSpec {
                name: "body".into(),
                kind: ModalityKind::Text,
            }],
            0,
        ),
    );
    let topics = [
        "rust borrow checker lifetimes",
        "espresso grind extraction",
        "alpine ski wax",
    ];
    for (i, t) in topics.iter().enumerate() {
        for j in 0..8 {
            kb.ingest(ObjectRecord::new(
                format!("note {i}-{j}"),
                vec![Some(RawContent::text(format!("{t} note number {j}")))],
            ))
            .unwrap();
        }
    }
    let system = MqaSystem::build(
        Config {
            k: 4,
            ..Config::default()
        },
        kb,
    )
    .unwrap();
    // uniform-weight fallback note visible in the panel
    assert!(system.status().render().contains("unlabelled"));
    let reply = system.ask_once(Turn::text("espresso grind")).unwrap();
    assert!(
        reply.results.iter().all(|r| r.title.starts_with("note 1-")),
        "{reply:?}"
    );
    // selecting a text result has no image to graft but must not fail
    let mut session = system.open_session();
    session.ask(Turn::text("alpine ski")).unwrap();
    let r2 = session
        .ask(Turn::select_and_text(0, "more ski notes"))
        .unwrap();
    assert!(!r2.results.is_empty());
}

#[test]
fn weight_override_turn_reaches_the_framework() {
    let kb = DatasetSpec::weather()
        .objects(150)
        .concepts(10)
        .seed(15)
        .generate();
    let system = MqaSystem::build(Config::default(), kb).unwrap();
    let phrase = phrase_of(system.corpus().kb(), 0);
    // Zero image weight vs zero text weight must change the ranking of a
    // text-only query... text-only query with zero text weight is
    // unscorable, so compare default vs text-heavy instead.
    let r_default = system.ask_once(Turn::text(phrase.clone())).unwrap();
    let r_text = system
        .ask_once(Turn::text(phrase).with_weights(vec![1.0, 0.0]))
        .unwrap();
    // Both must return full result sets; rankings may legitimately differ.
    assert_eq!(r_default.results.len(), r_text.results.len());
}
